"""Project-specific static analysis and runtime invariant checking.

The reproduction's correctness rests on numeric and structural
invariants -- the Lemma 3.2/3.8 verification inequalities, the
six-state candidate heap of Section 3.3, and R*-tree MBR containment --
that unit tests can only sample.  This package adds machine-checked
guardrails on both sides of the build:

- :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` --
  ``repro-lint``, an AST-based lint engine with project-specific rules
  (``RPR001`` .. ``RPR006``) and ``# repro: noqa(CODE)`` suppression;
- :mod:`repro.analysis.runtime` -- the opt-in runtime sanitizer
  (``REPRO_SANITIZE=1`` or :func:`sanitized`) that validates R*-tree
  structure, candidate-heap state transitions and Lemma 3.8 soundness
  after every mutation of those hot structures;
- :mod:`repro.analysis.invariants` -- the validators themselves, also
  callable directly from tests;
- :mod:`repro.analysis.deep` and friends (:mod:`~repro.analysis.
  callgraph`, :mod:`~repro.analysis.purity`, :mod:`~repro.analysis.
  floatcheck`, :mod:`~repro.analysis.layers`) -- the whole-program
  pass behind ``repro-lint --deep`` (rules ``RPR008`` .. ``RPR013``):
  call-graph reachability and dead code, interprocedural purity and
  determinism inference, distance-expression float-comparison dataflow
  with a paper-lemma conformance table, and layering contracts;
- :mod:`repro.analysis.concurrency` / :mod:`repro.analysis.locks` --
  the concurrency pass behind ``repro-lint --concurrency`` (rules
  ``RPR015`` .. ``RPR020``): shared-field lock discipline with a
  guarded-by inference table, asyncio hygiene, and a static lock-order
  graph whose runtime mirror the race sanitizer records through
  :func:`named_lock` / :func:`named_async_lock`.

The package ``__init__`` resolves its exports lazily (PEP 562): the
instrumented data structures (``core.heap``, ``index.rtree``) import
:mod:`repro.analysis.runtime` at module scope, so eagerly importing the
validators here would recreate the import cycle the layering avoids.

See ``docs/static_analysis.md`` for the rule catalogue and extension
guide.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "CONCURRENCY_RULES",
    "ConcurrencyAnalysis",
    "DEEP_RULES",
    "DeepAnalysis",
    "HEAP_TRANSITIONS",
    "InvariantViolation",
    "LEMMA_TABLE",
    "LintReport",
    "Linter",
    "LockOrderGraph",
    "Rule",
    "SANITIZER",
    "Sanitizer",
    "TrackedAsyncLock",
    "TrackedLock",
    "Violation",
    "analyze_concurrency",
    "analyze_project",
    "build_call_graph",
    "build_import_graph",
    "check_heap_structure",
    "check_heap_transition",
    "check_verification_soundness",
    "infer_effects",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "named_async_lock",
    "named_lock",
    "run_concurrency",
    "run_deep",
    "sanitized",
    "sanitizer_enabled",
    "validate_rtree",
]

_LINT_EXPORTS = {
    "LintReport",
    "Linter",
    "Rule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "lint_source",
}
_INVARIANT_EXPORTS = {
    "HEAP_TRANSITIONS",
    "InvariantViolation",
    "check_heap_structure",
    "check_heap_transition",
    "check_verification_soundness",
    "validate_rtree",
}
_RUNTIME_EXPORTS = {
    "SANITIZER",
    "Sanitizer",
    "TrackedAsyncLock",
    "TrackedLock",
    "named_async_lock",
    "named_lock",
    "sanitized",
    "sanitizer_enabled",
}
_DEEP_EXPORTS = {"DEEP_RULES", "DeepAnalysis", "analyze_project", "run_deep"}
_CONCURRENCY_EXPORTS = {
    "CONCURRENCY_RULES",
    "ConcurrencyAnalysis",
    "analyze_concurrency",
    "run_concurrency",
}
_LOCKS_EXPORTS = {"LockOrderGraph"}
_CALLGRAPH_EXPORTS = {"build_call_graph", "build_import_graph"}
_PURITY_EXPORTS = {"infer_effects"}
_FLOATCHECK_EXPORTS = {"LEMMA_TABLE"}


def __getattr__(name: str) -> object:
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _INVARIANT_EXPORTS:
        from repro.analysis import invariants

        return getattr(invariants, name)
    if name in _RUNTIME_EXPORTS:
        from repro.analysis import runtime

        return getattr(runtime, name)
    if name in _DEEP_EXPORTS:
        from repro.analysis import deep

        return getattr(deep, name)
    if name in _CONCURRENCY_EXPORTS:
        from repro.analysis import concurrency

        return getattr(concurrency, name)
    if name in _LOCKS_EXPORTS:
        from repro.analysis import locks

        return getattr(locks, name)
    if name in _CALLGRAPH_EXPORTS:
        from repro.analysis import callgraph

        return getattr(callgraph, name)
    if name in _PURITY_EXPORTS:
        from repro.analysis import purity

        return getattr(purity, name)
    if name in _FLOATCHECK_EXPORTS:
        from repro.analysis import floatcheck

        return getattr(floatcheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
