"""Invariant validators for the hot data structures.

These are the checks the runtime sanitizer (:mod:`repro.analysis.runtime`)
installs behind ``REPRO_SANITIZE=1``; they are plain functions so tests
can also call them directly on suspect structures.

Three families:

- :func:`validate_rtree` -- structural soundness of the R*-tree: child
  MBR containment *and* tightness, fill bounds, uniform leaf depth,
  entry-count bookkeeping, and coherence of each node's materialized
  :class:`~repro.index.node.NodeArrays` column mirror against its entry
  list (the vectorized kernels read the mirror, so a stale cache would
  silently desynchronize every distance computation);
- :func:`check_heap_structure` / :func:`check_heap_transition` -- the
  candidate heap's Table 1 layout and the legal Section 3.3 state
  machine (:data:`HEAP_TRANSITIONS`);
- :func:`check_verification_soundness` -- every POI newly certified by
  ``kNN_single`` / ``kNN_multiple`` must be confirmed by the
  covering-disk test of Lemma 3.8 against the peers' certain circles,
  with its stored distance matching a recomputation.

All failures raise :class:`InvariantViolation` (an ``AssertionError``
subclass, so ``pytest.raises(AssertionError)`` also catches it).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion, CoverageMethod
from repro.geometry.point import Point
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap, HeapEntry, HeapState
from repro.index.node import ChildEntry, LeafEntry, Node, NodeArrays
from repro.index.rtree import RTree

__all__ = [
    "HEAP_TRANSITIONS",
    "InvariantViolation",
    "check_heap_structure",
    "check_heap_transition",
    "check_verification_soundness",
    "validate_rtree",
]

_DISTANCE_TOLERANCE = 1e-9


class InvariantViolation(AssertionError):
    """A runtime invariant of the reproduction has been broken."""


# ----------------------------------------------------------------------
# candidate heap (Sections 3.2.1 / 3.3)
# ----------------------------------------------------------------------
#: Legal one-``add`` transitions of the Section 3.3 state machine.
#:
#: Derived from the heap maintenance rules: entries are never demoted
#: (certain stays certain), uncertain entries exist only while fewer
#: than ``k`` certain ones are known, and ``COMPLETE`` is absorbing.
#: Self-transitions (no-op adds, displacements) are always legal and
#: included explicitly.
HEAP_TRANSITIONS: Dict[HeapState, FrozenSet[HeapState]] = {
    HeapState.EMPTY: frozenset(
        {
            HeapState.EMPTY,
            HeapState.PARTIAL_UNCERTAIN,
            HeapState.PARTIAL_CERTAIN,
            HeapState.FULL_UNCERTAIN,  # k == 1, uncertain offer
            HeapState.COMPLETE,  # k == 1, certain offer
        }
    ),
    HeapState.PARTIAL_UNCERTAIN: frozenset(
        {
            HeapState.PARTIAL_UNCERTAIN,
            HeapState.PARTIAL_MIXED,
            HeapState.PARTIAL_CERTAIN,  # upgrade of the only uncertain entry
            HeapState.FULL_UNCERTAIN,
            HeapState.FULL_MIXED,
        }
    ),
    HeapState.PARTIAL_MIXED: frozenset(
        {
            HeapState.PARTIAL_MIXED,
            HeapState.PARTIAL_CERTAIN,  # upgrade of the last uncertain entry
            HeapState.FULL_MIXED,
        }
    ),
    HeapState.PARTIAL_CERTAIN: frozenset(
        {
            HeapState.PARTIAL_CERTAIN,
            HeapState.PARTIAL_MIXED,
            HeapState.FULL_MIXED,
            HeapState.COMPLETE,
        }
    ),
    HeapState.FULL_UNCERTAIN: frozenset(
        {
            HeapState.FULL_UNCERTAIN,
            HeapState.FULL_MIXED,
            HeapState.COMPLETE,  # k == 1, certain displaces the uncertain entry
        }
    ),
    HeapState.FULL_MIXED: frozenset({HeapState.FULL_MIXED, HeapState.COMPLETE}),
    HeapState.COMPLETE: frozenset({HeapState.COMPLETE}),
}


def check_heap_transition(before: HeapState, after: HeapState) -> None:
    """Assert that one ``add`` may move the heap from ``before`` to ``after``."""
    legal = HEAP_TRANSITIONS[before]
    if after not in legal:
        raise InvariantViolation(
            f"illegal heap state transition {before.value} -> {after.value}; "
            f"legal successors: {sorted(s.value for s in legal)}"
        )


def check_heap_structure(heap: CandidateHeap) -> None:
    """Assert the Table 1 structural invariants of ``heap``."""
    certain: List[HeapEntry] = heap._certain
    uncertain: List[HeapEntry] = heap._uncertain
    index = heap._index

    if len(certain) + len(uncertain) > heap.capacity:
        raise InvariantViolation(
            f"heap holds {len(certain) + len(uncertain)} entries, "
            f"capacity is {heap.capacity}"
        )
    if len(certain) + len(uncertain) != len(index):
        raise InvariantViolation(
            "heap index out of sync: "
            f"{len(certain) + len(uncertain)} entries vs {len(index)} index keys"
        )
    if uncertain and len(certain) >= heap.capacity:
        raise InvariantViolation(
            "uncertain entries present although k certain entries are known"
        )
    for bucket, expect_certain, name in (
        (certain, True, "certain"),
        (uncertain, False, "uncertain"),
    ):
        previous = -1.0
        for entry in bucket:
            if entry.certain is not expect_certain:
                raise InvariantViolation(
                    f"{name} bucket holds an entry flagged certain={entry.certain}"
                )
            if entry.distance < 0.0:
                raise InvariantViolation("negative distance stored in heap")
            if entry.distance < previous:
                raise InvariantViolation(
                    f"{name} bucket not in ascending distance order: "
                    f"{entry.distance} after {previous}"
                )
            previous = entry.distance
            if index.get(entry.key()) is not entry:
                raise InvariantViolation(
                    f"heap index does not point at the stored {name} entry"
                )


# ----------------------------------------------------------------------
# verification soundness (Lemmas 3.2 / 3.8)
# ----------------------------------------------------------------------
def check_verification_soundness(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    pre_snapshot: Dict[Tuple[float, float, object], bool],
    method: CoverageMethod = CoverageMethod.EXACT,
    polygon_sides: int = 32,
) -> None:
    """Cross-check the entries a verifier call just certified.

    ``pre_snapshot`` maps entry key -> certain flag as of *before* the
    verifier ran.  Three properties are asserted for the call's output:

    1. every newly certified entry's stored distance matches an
       independent recomputation of ``Dist(Q, n_i)``;
    2. every newly certified entry passes the covering-disk test of
       Lemma 3.8 (its disk around ``Q`` lies inside the union of the
       peers' certain circles, evaluated with the same coverage backend
       the verifier used);
    3. sound ordering: no entry left (or newly added as) uncertain by
       this call is closer to ``Q`` than a newly certified entry.
    """
    circles = [cache.certain_circle() for cache in caches if not cache.is_empty()]
    region = CertainRegion(method=method, polygon_sides=polygon_sides)
    for circle in circles:
        region.add_circle(circle)

    new_certain: List[HeapEntry] = []
    new_uncertain: List[HeapEntry] = []
    for entry in heap.entries():
        was_certain = pre_snapshot.get(entry.key())
        if entry.certain and was_certain is not True:
            new_certain.append(entry)
        elif not entry.certain and was_certain is None:
            new_uncertain.append(entry)

    for entry in new_certain:
        recomputed = query.distance_to(entry.point)
        if abs(recomputed - entry.distance) > _DISTANCE_TOLERANCE:
            raise InvariantViolation(
                f"certified entry at {entry.point} stores distance "
                f"{entry.distance}, recomputation gives {recomputed}"
            )
        target = Circle(query, entry.distance)
        covered = any(
            circle.contains_circle(target) for circle in circles
        ) or region.covers_disk(target)
        if not covered:
            raise InvariantViolation(
                f"Lemma 3.8 violation: certified POI at {entry.point} "
                f"(distance {entry.distance}) has a disk not covered by the "
                f"{len(circles)} peer certain circles"
            )

    if new_certain and new_uncertain:
        max_certified = max(entry.distance for entry in new_certain)
        min_uncertain = min(entry.distance for entry in new_uncertain)
        if min_uncertain < max_certified - _DISTANCE_TOLERANCE:
            raise InvariantViolation(
                "sound-verifier ordering violation: an uncertain candidate at "
                f"distance {min_uncertain} is closer than a certified one at "
                f"{max_certified}"
            )


# ----------------------------------------------------------------------
# R*-tree structure
# ----------------------------------------------------------------------
def validate_rtree(tree: RTree, strict_fill: Optional[bool] = None) -> None:
    """Assert the structural invariants of ``tree``.

    Checks, for every node reachable from the root:

    - levels decrease by exactly one per edge and leaves sit at level 0
      (uniform leaf depth);
    - leaf nodes hold only :class:`LeafEntry`, internal only
      :class:`ChildEntry`;
    - every ``ChildEntry.bbox`` both *contains* and *is contained by*
      the child's recomputed MBR (containment ensures search soundness,
      tightness catches shrink misses after deletes);
    - no node is referenced twice (aliasing / orphan corruption);
    - fill bounds: at most ``max_entries`` everywhere; at least
      ``min_entries`` for non-root nodes when ``strict_fill`` -- which
      defaults to False for bulk-loaded trees (STR packing legitimately
      leaves one trailing under-filled node per level) and True for
      dynamically built ones;
    - an internal root has at least two children;
    - the number of reachable leaf entries equals ``len(tree)``;
    - any *materialized* :class:`NodeArrays` mirror agrees exactly with
      the node's entry list (coordinates, payload identity, MBR bounds,
      child identity, and the memoized tie keys' length).  Unmaterialized
      mirrors are skipped — building one just to compare it against its
      own source would prove nothing.
    """
    if strict_fill is None:
        strict_fill = not getattr(tree, "_relaxed_fill", False)
    config = tree.config
    root = tree.root
    seen: Set[int] = set()
    leaf_entries = 0

    stack: List[Tuple[Node, bool]] = [(root, True)]
    while stack:
        node, is_root = stack.pop()
        # id() here detects aliased node objects inside one tree walk; the
        # identities never escape the traversal, so replay is unaffected.
        if id(node) in seen:  # repro: noqa(RPR010)
            raise InvariantViolation(
                f"node page={node.page_id} is referenced more than once"
            )
        seen.add(id(node))  # repro: noqa(RPR010)

        count = len(node.entries)
        if count > config.max_entries:
            raise InvariantViolation(
                f"node page={node.page_id} holds {count} entries "
                f"(max {config.max_entries})"
            )
        if is_root:
            if not node.is_leaf and count < 2:
                raise InvariantViolation(
                    f"internal root page={node.page_id} has {count} children; "
                    "a single-child root must be shortened"
                )
        else:
            minimum = config.min_entries if strict_fill else 1
            if count < minimum:
                raise InvariantViolation(
                    f"non-root node page={node.page_id} (level {node.level}) "
                    f"holds {count} entries (min {minimum})"
                )

        _check_node_arrays(node)

        if node.is_leaf:
            for entry in node.entries:
                if not isinstance(entry, LeafEntry):
                    raise InvariantViolation(
                        f"leaf page={node.page_id} holds a non-leaf entry"
                    )
                leaf_entries += 1
        else:
            for entry in node.entries:
                if not isinstance(entry, ChildEntry):
                    raise InvariantViolation(
                        f"internal page={node.page_id} holds a non-child entry"
                    )
                child = entry.child
                if child.level != node.level - 1:
                    raise InvariantViolation(
                        f"level skew: page={node.page_id} at level {node.level} "
                        f"points to page={child.page_id} at level {child.level}"
                    )
                if not child.entries:
                    raise InvariantViolation(
                        f"empty node page={child.page_id} linked from "
                        f"page={node.page_id}"
                    )
                computed = child.compute_bbox()
                if not entry.bbox.contains_box(computed):
                    raise InvariantViolation(
                        f"MBR containment violation: page={node.page_id} entry "
                        f"box {entry.bbox} does not contain child "
                        f"page={child.page_id} box {computed}"
                    )
                if not computed.contains_box(entry.bbox):
                    raise InvariantViolation(
                        f"MBR tightness violation (shrink miss): "
                        f"page={node.page_id} entry box {entry.bbox} is larger "
                        f"than child page={child.page_id} box {computed}"
                    )
                stack.append((child, False))

    if leaf_entries != len(tree):
        raise InvariantViolation(
            f"tree bookkeeping broken: {leaf_entries} reachable leaf entries, "
            f"len(tree) reports {len(tree)} (orphaned or duplicated entries)"
        )


def _check_node_arrays(node: Node) -> None:
    """Assert a materialized column mirror matches the entry list exactly.

    The vectorized kernels trust ``node.arrays()`` blindly; every
    mutation path must therefore either update or invalidate the cache.
    Comparison is bitwise on coordinates/bounds (``==`` on floats — the
    mirror stores the *same* values, not recomputed ones) and by object
    identity on payloads and children.
    """
    arrays = node._arrays
    if arrays is None:
        return
    entries = node.entries
    where = f"page={node.page_id} (level {node.level})"
    if arrays.is_leaf != node.is_leaf:
        raise InvariantViolation(
            f"array mirror of {where} has is_leaf={arrays.is_leaf}"
        )
    if len(arrays) != len(entries):
        raise InvariantViolation(
            f"stale array mirror on {where}: {len(arrays)} mirrored rows "
            f"vs {len(entries)} entries"
        )
    if node.is_leaf:
        for index, entry in enumerate(entries):
            if not isinstance(entry, LeafEntry):
                return  # typed-entry check reports this corruption
            if (
                arrays.xs[index] != entry.point.x
                or arrays.ys[index] != entry.point.y
            ):
                raise InvariantViolation(
                    f"array mirror of {where} row {index} holds "
                    f"({arrays.xs[index]}, {arrays.ys[index]}), entry is "
                    f"({entry.point.x}, {entry.point.y})"
                )
            if arrays.payloads[index] is not entry.payload:
                raise InvariantViolation(
                    f"array mirror of {where} row {index} points at a "
                    "different payload object"
                )
        if arrays.tie_keys is not None and len(arrays.tie_keys) != len(entries):
            raise InvariantViolation(
                f"memoized tie keys of {where} cover {len(arrays.tie_keys)} "
                f"rows, node holds {len(entries)} entries"
            )
        return
    for index, entry in enumerate(entries):
        if not isinstance(entry, ChildEntry):
            return  # typed-entry check reports this corruption
        box = entry.bbox
        if (
            float(arrays.lo_x[index]) != box.min_x
            or float(arrays.lo_y[index]) != box.min_y
            or float(arrays.hi_x[index]) != box.max_x
            or float(arrays.hi_y[index]) != box.max_y
        ):
            raise InvariantViolation(
                f"array mirror of {where} row {index} bounds "
                f"({float(arrays.lo_x[index])}, {float(arrays.lo_y[index])}, "
                f"{float(arrays.hi_x[index])}, {float(arrays.hi_y[index])}) "
                f"disagree with the stored MBR {box}"
            )
        if arrays.children[index] is not entry.child:
            raise InvariantViolation(
                f"array mirror of {where} row {index} points at a different "
                "child node"
            )
