"""Float-comparison dataflow over distance-valued expressions (deep pass 3).

The SENN/SNNN verifiers are soundness-critical float code: Lemma 3.2
certifies a candidate with ``Dist(Q, n_i) + delta <= Dist(P, n_k)`` and a
single flipped comparison silently turns an exact algorithm into an
approximate one (differential tests catch it eventually; this pass
catches it at lint time).

Mechanism — per function, a flow-insensitive taint pass marks
*distance-valued* expressions: calls like ``distance_to``/``mindist``,
attributes like ``.distance``/``.radius``/``.certain_radius``, parameters
with distance names, and anything arithmetic built from them.  Every
ordering/equality comparison with a tainted operand in a strict-float
module (:data:`repro.analysis.config.STRICT_FLOAT_MODULES`) is a *site*.

Two rules consume the sites:

``RPR011``
    A site must be tolerance-routed (an operand mentions a tolerance),
    a sign guard against literal zero, sanctioned by the lemma table,
    or carry a justified ``# repro: noqa(RPR011)``.

``RPR012``
    The lemma-conformance check.  :data:`LEMMA_TABLE` pins down every
    load-bearing comparison in the verifiers, the candidate heap and
    the EINN pruning rules: its paper lemma, exact operands, and the
    required direction.  A site whose operands match a table entry but
    whose operator differs (the classic ``<=`` -> ``<`` soundness flip)
    is a violation; so is a stale table entry with no matching site, a
    missing required call (Lemma 3.8's ``covers_disk``), and — inside
    the self-check scopes — any tainted comparison the table does not
    cover at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.project import Project, ProjectModule

__all__ = [
    "ComparisonSite",
    "LEMMA_TABLE",
    "LemmaEntry",
    "SELF_CHECK_SCOPES",
    "collect_comparison_sites",
    "float_comparison_violations",
    "lemma_conformance_violations",
    "lemma_table_lines",
    "match_lemma_entry",
]

# ----------------------------------------------------------------------
# taint vocabulary
# ----------------------------------------------------------------------

#: Call names whose result is a distance (mirrors RPR001's catalogue).
_DISTANCE_CALLS: Set[str] = {
    "distance_to",
    "squared_distance_to",
    "distance",
    "squared_distance",
    "mindist",
    "maxdist",
    "network_distance",
    "path_length",
    "hypot",
    "dist",
    # Vectorized kernels (repro.geometry.vecmath): arrays of distances.
    "hypot_pairs",
    "point_distances",
    "point_distance_list",
    "mindist_arrays",
    "maxdist_arrays",
}

#: Attribute names holding distances.
_DISTANCE_ATTRS: Set[str] = {
    "distance",
    "radius",
    "certain_radius",
    "known_radius",
    "lower",
    "upper",
    "half_width",
}

#: Parameter names seeding taint by convention.
_DISTANCE_PARAMS: Set[str] = {
    "distance",
    "dist",
    "radius",
    "delta",
    "separation",
    "mindist",
    "maxdist",
    "lower",
    "upper",
    "certain_radius",
    # Plural forms: whole-node distance columns in the vectorized index.
    "dists",
    "distances",
    "mindists",
    "maxdists",
}

#: Calls that forward their arguments' taint.
_TAINT_FORWARDING_CALLS: Set[str] = {
    "min",
    "max",
    "abs",
    "sum",
    "float",
    "round",
    "asarray",
    "fromiter",
}

#: Methods that forward their *receiver's* taint (``dists.tolist()`` is
#: still an array of distances).
_TAINT_PRESERVING_METHODS: Set[str] = {"tolist", "copy"}

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_tolerance_token(token: str) -> bool:
    lowered = token.lower()
    return (
        lowered in {"tol", "eps", "epsilon"}
        or "tolerance" in lowered
        or lowered.endswith("_tol")
        or lowered.endswith("_eps")
    )


def _mentions_tolerance(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_tolerance_token(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_tolerance_token(sub.attr):
            return True
    return False


def _is_zero_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


# ----------------------------------------------------------------------
# sites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComparisonSite:
    """One comparison with a distance-valued operand."""

    module: str
    qualname: str  # enclosing top-level function/method, fully qualified
    lineno: int
    col: int
    op: str  # ast operator class name: "Lt", "LtE", ...
    left: str  # ast.unparse of the left operand
    right: str  # ast.unparse of the (joined) comparators
    tolerance_routed: bool
    zero_guard: bool


def collect_comparison_sites(module: ProjectModule) -> List[ComparisonSite]:
    """All distance-tainted comparisons in ``module``.

    Comparisons inside nested functions are attributed to the enclosing
    top-level function (that is where the lemma lives).
    """
    sites: List[ComparisonSite] = []
    for qualname, node in _top_level_functions(module):
        tainted = _tainted_names(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Compare):
                continue
            if not isinstance(sub.ops[0], _COMPARE_OPS):
                continue
            operands = [sub.left, *sub.comparators]
            if not any(_is_distance_expr(op, tainted) for op in operands):
                continue
            right = ", ".join(ast.unparse(c) for c in sub.comparators)
            sites.append(
                ComparisonSite(
                    module=module.name,
                    qualname=qualname,
                    lineno=sub.lineno,
                    col=sub.col_offset,
                    op=type(sub.ops[0]).__name__,
                    left=ast.unparse(sub.left),
                    right=right,
                    tolerance_routed=any(_mentions_tolerance(op) for op in operands),
                    zero_guard=(
                        isinstance(sub.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                        and any(_is_zero_literal(op) for op in operands)
                    ),
                )
            )
    return sites


def _top_level_functions(
    module: ProjectModule,
) -> Iterator[Tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{module.name}.{node.name}", node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{module.name}.{node.name}.{item.name}", item


def _tainted_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Names bound to distance-valued expressions anywhere in the function."""
    tainted: Set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in _DISTANCE_PARAMS:
            tainted.add(arg.arg)
    # Flow-insensitive: iterate to a fixpoint over assignments.
    changed = True
    while changed:
        changed = False
        for sub in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign):
                targets, value = list(sub.targets), sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            elif isinstance(sub, ast.AugAssign):
                targets, value = [sub.target], sub.value
            elif isinstance(sub, ast.For):
                if _taint_for_loop(sub, tainted):
                    changed = True
                continue
            if value is None:
                continue
            if _is_distance_expr(value, tainted):
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in tainted:
                        tainted.add(target.id)
                        changed = True
            else:
                # Tuple unpacking from an opaque source (heappop and
                # friends): element-wise taint is unknowable, so fall
                # back to the naming convention for the unpacked names.
                for target in targets:
                    if not isinstance(target, ast.Tuple):
                        continue
                    for element in target.elts:
                        if (
                            isinstance(element, ast.Name)
                            and element.id in _DISTANCE_PARAMS
                            and element.id not in tainted
                        ):
                            tainted.add(element.id)
                            changed = True
    return tainted


def _taint_for_loop(loop: ast.For, tainted: Set[str]) -> bool:
    """Taint loop targets drawn from distance-valued iterables.

    ``for d in dists:`` binds ``d`` to a distance; ``for d, t, e in
    zip(dists, ties, entries):`` binds element-wise, so each tuple target
    is matched to the corresponding ``zip`` argument.  The vectorized
    index iterates whole-node distance columns this way.
    """
    changed = False
    target, it = loop.target, loop.iter
    if isinstance(target, ast.Name):
        if (
            target.id not in tainted
            and _is_distance_expr(it, tainted)
        ):
            tainted.add(target.id)
            changed = True
        return changed
    if not isinstance(target, ast.Tuple):
        return False
    if (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "zip"
        and len(it.args) == len(target.elts)
    ):
        pairs = zip(target.elts, it.args)
        for element, source in pairs:
            if (
                isinstance(element, ast.Name)
                and element.id not in tainted
                and _is_distance_expr(source, tainted)
            ):
                tainted.add(element.id)
                changed = True
        return changed
    # Tuple target over an opaque iterable: fall back to the naming
    # convention, mirroring the tuple-unpacking assignment case.
    for element in target.elts:
        if (
            isinstance(element, ast.Name)
            and element.id in _DISTANCE_PARAMS
            and element.id not in tainted
        ):
            tainted.add(element.id)
            changed = True
    return changed


def _is_distance_expr(node: ast.expr, tainted: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Attribute):
        return node.attr in _DISTANCE_ATTRS or _is_distance_expr(node.value, tainted)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name in _DISTANCE_CALLS:
            return True
        if name in _TAINT_FORWARDING_CALLS:
            return any(_is_distance_expr(arg, tainted) for arg in node.args)
        if name in _TAINT_PRESERVING_METHODS and isinstance(func, ast.Attribute):
            return _is_distance_expr(func.value, tainted)
        return False
    if isinstance(node, ast.BinOp):
        return _is_distance_expr(node.left, tainted) or _is_distance_expr(
            node.right, tainted
        )
    if isinstance(node, ast.UnaryOp):
        return _is_distance_expr(node.operand, tainted)
    if isinstance(node, ast.Tuple):
        return any(_is_distance_expr(element, tainted) for element in node.elts)
    if isinstance(node, ast.IfExp):
        return _is_distance_expr(node.body, tainted) or _is_distance_expr(
            node.orelse, tainted
        )
    if isinstance(node, ast.Subscript):
        return _is_distance_expr(node.value, tainted)
    return False


# ----------------------------------------------------------------------
# the lemma table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LemmaEntry:
    """One sanctioned comparison (or required call) and its justification."""

    qualname: str  # fully qualified enclosing function
    lemma: str  # paper reference or invariant name
    op: str = ""  # required ast operator class name (compare entries)
    left: str = ""  # exact ast.unparse of the left operand
    right: str = ""  # exact ast.unparse of the comparators
    requires_call: str = ""  # attribute name that must be called (call entries)
    rationale: str = ""

    @property
    def is_call_entry(self) -> bool:
        return bool(self.requires_call)

    def module_of(self, module_names: Sequence[str]) -> Optional[str]:
        """The analyzed module containing this entry's function, if any.

        A qualname alone cannot distinguish ``module.func`` from
        ``module.Class.method``, so the split is resolved against the
        actual module list (module names are never prefixes of each
        other here).
        """
        for name in module_names:
            if self.qualname.startswith(name + "."):
                return name
        return None


#: Every load-bearing float comparison in the verification stack, pinned
#: to its paper lemma and required direction.  Operand strings are the
#: exact ``ast.unparse`` of the source expressions — an edit to either
#: side or to the operator surfaces as an RPR012 finding.
LEMMA_TABLE: Tuple[LemmaEntry, ...] = (
    LemmaEntry(
        qualname="repro.core.verification._verify_single_peer",
        lemma="Lemma 3.2",
        op="LtE",
        left="distance + delta",
        right="certain_radius",
        rationale=(
            "single-peer certification: Dist(Q,n_i) + delta <= Dist(P,n_k); "
            "the closed inequality is exactly the lemma statement — "
            "flipping to < drops boundary candidates and breaks exactness, "
            "widening to a tolerance would certify unsound candidates"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.verification._verify_multi_peer",
        lemma="Lemma 3.8",
        requires_call="covers_disk",
        rationale=(
            "multi-peer certification must delegate to the certain-region "
            "coverage test (union of certain circles covers the candidate "
            "disk); a hand-rolled comparison here cannot be conservative"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.verification._single_disk_covered",
        lemma="Lemma 3.8 (single-circle fast path)",
        op="LtE",
        left="separation + distance",
        right="certain_radius - tolerance",
        rationale=(
            "the batched pre-filter replicates Circle.contains_circle with "
            "the negated conservative tolerance: a candidate disk is "
            "certainly covered only when it sits strictly (by tolerance) "
            "inside one certain circle; flipping <= to < would only shrink "
            "the fast path, but any loosening would certify uncovered disks"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.heap.CandidateHeap._add",
        lemma="domain invariant",
        op="Lt",
        left="distance",
        right="0.0",
        rationale=(
            "negative distances are logic errors, never rounding artefacts "
            "of the metric (hypot is non-negative); strict sign guard"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.heap.CandidateHeap._insert",
        lemma="Table 1 (Section 3.2.1)",
        op="Lt",
        left="entry.distance",
        right="worst.distance",
        rationale=(
            "an uncertain entry displaces the farthest uncertain entry only "
            "when strictly closer; ties keep the incumbent, which makes "
            "heap content deterministic under duplicate distances"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn._expand_einn",
        lemma="Section 3.3, rule 1 (downward pruning)",
        op="Lt",
        left="maxdist",
        right="bounds.lower",
        rationale=(
            "an MBR is skipped only when strictly inside the certain circle "
            "C_r; at MAXDIST == D_ct a POI may sit exactly on the boundary "
            "and must still be enumerated (<= would drop it)"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn._expand_einn",
        lemma="Section 3.3, rule 2 (upward pruning)",
        op="Gt",
        left="(mindist, _NODE_TIE)",
        right="current_kth",
        rationale=(
            "an MBR is discarded only when its MINDIST strictly exceeds the "
            "running k-th cut; the node tie key sorts before every payload "
            "tie so boundary MBRs are still expanded"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn._expand_einn",
        lemma="Section 3.3, rule 2 (upward pruning, leaf)",
        op="LtE",
        left="(dist, tie)",
        right="current_kth",
        rationale=(
            "a leaf object enters the queue when its (distance, tie) is "
            "admissible under the current cut; ties at the bound are "
            "admissible by definition of the cut"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn.k_nearest_einn",
        lemma="Section 3.3, rule 2 (upward pruning, pop)",
        op="Gt",
        left="(dist, tie)",
        right="kth_cut()",
        rationale=(
            "best-first termination: once the queue head strictly exceeds "
            "the k-th cut nothing better remains (queue is distance-ordered)"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn.k_nearest_depth_first",
        lemma="branch-and-bound cut (Roussopoulos et al.)",
        op="Lt",
        left="key",
        right="kth_cut()",
        rationale=(
            "a leaf entry improves the result set only when strictly below "
            "the k-th (distance, tie) cut; at equality it is the same "
            "candidate rank and must not displace"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn.k_nearest_depth_first",
        lemma="branch-and-bound cut (subtree descent)",
        op="Lt",
        left="(entry.bbox.mindist(query), _NODE_TIE)",
        right="kth_cut()",
        rationale=(
            "a subtree is visited when its MINDIST paired with the node tie "
            "is strictly below the cut; the node tie sorts first so an MBR "
            "touching the k-th distance can still contribute a better tie"
        ),
    ),
    LemmaEntry(
        qualname="repro.index.knn._insert_sorted",
        lemma="result-order invariant",
        op="Gt",
        left="(results[index - 1].distance, poi_tie_key(results[index - 1].payload))",
        right="item_key",
        rationale=(
            "insertion scans left while the predecessor strictly exceeds "
            "the new key, keeping equal keys in insertion order (stable)"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.range_queries._cache_covers_disk",
        lemma="Lemma 3.2 analogue (range)",
        op="Lt",
        left="separation + target.radius",
        right="circle.radius",
        rationale=(
            "a kNN cache proves only the open certain disk: an uncached POI "
            "may tie exactly at Dist(P,n_k), so containment must be strict "
            "(found by repro-difftest on a zero-radius 1-NN cache)"
        ),
    ),
    LemmaEntry(
        qualname="repro.core.range_queries._answer_from_caches",
        lemma="range semantics",
        op="LtE",
        left="distance",
        right="radius",
        rationale=(
            "the query asks for the closed disk; candidates at exactly the "
            "query radius are members of the answer"
        ),
    ),
)

#: Scopes in which *every* distance-tainted comparison must be matched by
#: a :data:`LEMMA_TABLE` entry — the soundness-critical verifier surface.
#: A prefix of the site qualname (``CandidateHeap`` covers every method).
SELF_CHECK_SCOPES: Tuple[str, ...] = (
    "repro.core.verification._verify_single_peer",
    "repro.core.verification._verify_multi_peer",
    "repro.core.heap.CandidateHeap",
)


def match_lemma_entry(site: ComparisonSite) -> Optional[LemmaEntry]:
    """The table entry whose scope and operands match ``site``, if any.

    Matching deliberately ignores the operator: a direction flip must
    still *match* so RPR012 can report the mismatch instead of RPR011
    reporting an unknown comparison.
    """
    for entry in LEMMA_TABLE:
        if entry.is_call_entry:
            continue
        if (
            entry.qualname == site.qualname
            and entry.left == site.left
            and entry.right == site.right
        ):
            return entry
    return None


def _in_self_check_scope(qualname: str) -> bool:
    return any(
        qualname == scope or qualname.startswith(scope + ".")
        for scope in SELF_CHECK_SCOPES
    )


# ----------------------------------------------------------------------
# rule front ends
# ----------------------------------------------------------------------
def _strict_modules(project: Project) -> Iterator[ProjectModule]:
    for name in config.STRICT_FLOAT_MODULES:
        module = project.modules.get(name)
        if module is not None:
            yield module


def float_comparison_violations(
    project: Project,
) -> Iterator[Tuple[ComparisonSite, str]]:
    """RPR011: raw distance comparisons bypassing the tolerance layer."""
    for module in _strict_modules(project):
        for site in collect_comparison_sites(module):
            if site.tolerance_routed or site.zero_guard:
                continue
            entry = match_lemma_entry(site)
            if entry is not None and entry.op == site.op:
                continue
            if entry is not None:
                # Direction mismatch is RPR012's finding; avoid double
                # reporting the same line.
                continue
            yield (
                site,
                f"raw `{_op_symbol(site.op)}` on distance-valued expression "
                f"`{site.left} {_op_symbol(site.op)} {site.right}`; route it "
                "through repro.geometry.tolerance, add a LEMMA_TABLE entry, "
                "or justify with `# repro: noqa(RPR011)`",
            )


def lemma_conformance_violations(
    project: Project,
) -> Iterator[Tuple[str, int, str]]:
    """RPR012: (module_name, lineno, message) per conformance breach."""
    sites_by_module: Dict[str, List[ComparisonSite]] = {}
    for module in _strict_modules(project):
        sites_by_module[module.name] = collect_comparison_sites(module)

    matched_entries: Set[LemmaEntry] = set()
    for sites in sites_by_module.values():
        for site in sites:
            entry = match_lemma_entry(site)
            if entry is None:
                if _in_self_check_scope(site.qualname):
                    yield (
                        site.module,
                        site.lineno,
                        f"comparison `{site.left} {_op_symbol(site.op)} "
                        f"{site.right}` in {site.qualname} is not covered by "
                        "the lemma table; every verifier/heap comparison "
                        "must cite its lemma (repro.analysis.floatcheck."
                        "LEMMA_TABLE)",
                    )
                continue
            matched_entries.add(entry)
            if entry.op != site.op:
                yield (
                    site.module,
                    site.lineno,
                    f"comparison direction violates {entry.lemma}: "
                    f"`{site.left} {_op_symbol(site.op)} {site.right}` but "
                    f"the lemma requires `{_op_symbol(entry.op)}` "
                    f"({entry.rationale})",
                )

    module_names = list(sites_by_module)
    for entry in LEMMA_TABLE:
        entry_module = entry.module_of(module_names)
        if entry_module is None:
            continue  # module not analyzed in this (partial) run
        if entry.is_call_entry:
            if not _function_calls(project, entry.qualname, entry.requires_call):
                yield (
                    entry_module,
                    1,
                    f"{entry.qualname} no longer calls "
                    f"`{entry.requires_call}` required by {entry.lemma} "
                    f"({entry.rationale})",
                )
        elif entry not in matched_entries:
            yield (
                entry_module,
                1,
                f"stale lemma table entry: no comparison "
                f"`{entry.left} ... {entry.right}` found in "
                f"{entry.qualname}; update LEMMA_TABLE alongside the code",
            )


def _function_calls(project: Project, qualname: str, call_name: str) -> bool:
    """Does the named function contain a call to ``call_name``?"""
    module_name, func = qualname.rsplit(".", 1)
    module = project.modules.get(module_name)
    if module is None:
        # Method qualname: module.Class.method
        module_name, cls = module_name.rsplit(".", 1)
        module = project.modules.get(module_name)
        if module is None:
            return False
        func = f"{cls}.{func}"
    for fn_qualname, node in _top_level_functions(module):
        if fn_qualname != f"{module_name}.{func}":
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                target = sub.func
                name = target.attr if isinstance(target, ast.Attribute) else (
                    target.id if isinstance(target, ast.Name) else ""
                )
                if name == call_name:
                    return True
    return False


_OP_SYMBOLS: Dict[str, str] = {
    "Lt": "<",
    "LtE": "<=",
    "Gt": ">",
    "GtE": ">=",
    "Eq": "==",
    "NotEq": "!=",
}


def _op_symbol(op: str) -> str:
    return _OP_SYMBOLS.get(op, op)


def lemma_table_lines() -> List[str]:
    """The table rendered for ``--explain`` output and the docs."""
    lines: List[str] = []
    for entry in LEMMA_TABLE:
        if entry.is_call_entry:
            lines.append(
                f"{entry.qualname}: must call `{entry.requires_call}` "
                f"[{entry.lemma}]"
            )
        else:
            lines.append(
                f"{entry.qualname}: `{entry.left} {_op_symbol(entry.op)} "
                f"{entry.right}` [{entry.lemma}]"
            )
    return lines
