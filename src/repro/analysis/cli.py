"""``repro-lint``: command-line front end for the lint engine.

Exit codes: 0 clean, 1 violations found, 2 usage error.

Also runnable without an installed entry point::

    PYTHONPATH=src python -m repro.analysis.cli src/repro tests
    PYTHONPATH=src python -m repro.analysis src/repro tests

``--deep`` switches to the whole-program analysis suite (call graph,
purity inference, float-comparison dataflow, layering contracts; rules
RPR008-RPR013).  ``--concurrency`` runs the concurrency pass (shared
fields, asyncio hygiene, lock order; rules RPR015-RPR020).  ``--perf``
runs the performance-and-accounting pass (billing discipline, subcounter
fold-once, codec symmetry, mirror/hot-loop rules; RPR021-RPR026).  The
flags compose, sharing one project load and one baseline ratchet.
Whole-program passes always analyze the full ``src/repro`` tree —
cross-module reasoning needs the whole program — but ``--changed-only``
restricts the *reported* findings to the given paths (or, with no
paths, to the files ``git diff --name-only HEAD`` lists), which is what
the pre-commit hook uses.  ``--report`` additionally prints the
guarded-by table and lock-order graph the concurrency pass inferred.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.config import DEFAULT_BASELINE_NAME
from repro.analysis.lint import Linter, iter_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific AST lint for the SENN/SNNN reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    deep = parser.add_argument_group("deep analysis")
    deep.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program passes (RPR008-RPR013) over src/repro",
    )
    deep.add_argument(
        "--baseline",
        type=Path,
        default=Path(DEFAULT_BASELINE_NAME),
        metavar="FILE",
        help="baseline file of known findings (default: %(default)s)",
    )
    deep.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    deep.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only findings in the given paths (or in `git diff "
            "--name-only HEAD` when no paths are given); analysis still "
            "covers the whole tree"
        ),
    )
    deep.add_argument(
        "--callgraph-cache",
        type=Path,
        metavar="FILE",
        help="read/write the call-graph facts cache (JSON, SHA-keyed)",
    )
    deep.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run the whole-program concurrency pass (RPR015-RPR020) over "
            "src/repro; composes with --deep"
        ),
    )
    deep.add_argument(
        "--perf",
        action="store_true",
        help=(
            "run the performance-and-accounting pass (RPR021-RPR026) over "
            "src/repro; composes with --deep and --concurrency"
        ),
    )
    deep.add_argument(
        "--report",
        action="store_true",
        help=(
            "with --concurrency, also print the inferred guarded-by table, "
            "lock-order graph and thread entry points; with --perf, the "
            "billing table, mutation table and hot set"
        ),
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _git_changed_files() -> List[Path]:
    try:
        output = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return []
    return [Path(line) for line in output.splitlines() if line.strip()]


def _deep_main(args: argparse.Namespace) -> int:
    from repro.analysis import deep
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.lint import Violation
    from repro.analysis.project import load_project

    src_root = Path("src/repro")
    if not src_root.is_dir():
        print(
            "repro-lint: error: whole-program passes must run from the "
            "repository root (src/repro not found)",
            file=sys.stderr,
        )
        return 2

    cached = None
    if args.callgraph_cache is not None:
        cached = deep.load_cached_graph(args.callgraph_cache)

    project = load_project(
        [src_root], deep.default_reference_roots(Path("."))
    )
    violations: List[Violation] = []
    modules_analyzed = len(project.modules)
    graph: Optional[CallGraph] = None
    if args.deep:
        analysis = deep.analyze_project(project, cached=cached)
        violations.extend(analysis.violations)
        graph = analysis.graph
    if args.concurrency:
        from repro.analysis import concurrency

        conc = concurrency.analyze_concurrency(project, cached=cached)
        violations.extend(conc.violations)
        graph = graph or conc.graph
        if args.report:
            for line in concurrency.concurrency_report(conc):
                print(line)
    if args.perf:
        from repro.analysis import accounting, hotpath

        acct = accounting.analyze_accounting(project, cached=cached)
        violations.extend(acct.violations)
        graph = graph or acct.graph
        hot = hotpath.analyze_hotpath(project, cached=graph)
        violations.extend(hot.violations)
        if args.report:
            for line in accounting.accounting_report(acct):
                print(line)
            for line in hotpath.hotpath_report(hot):
                print(line)

    if args.callgraph_cache is not None and graph is not None:
        deep.save_graph_cache(args.callgraph_cache, graph)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    if args.changed_only:
        changed = args.paths if args.paths else _git_changed_files()
        allowed = {path.resolve() for path in changed}
        violations = [
            v for v in violations if Path(v.path).resolve() in allowed
        ]

    if args.update_baseline:
        deep.save_baseline(args.baseline, violations)
        if not args.quiet:
            print(
                f"repro-lint: baseline updated with {len(violations)} "
                f"finding(s) -> {args.baseline}",
                file=sys.stderr,
            )
        return 0

    baseline = deep.load_baseline(args.baseline)
    new, baselined, stale = deep.partition_violations(violations, baseline)
    for violation in new:
        print(violation.render())
    for entry in stale:
        print(
            f"repro-lint: stale baseline entry (no longer fires): {entry}",
            file=sys.stderr,
        )
    if not args.quiet:
        flags = [
            flag
            for flag, on in (
                ("--deep", args.deep),
                ("--concurrency", args.concurrency),
                ("--perf", args.perf),
            )
            if on
        ]
        noun = "finding" if len(new) == 1 else "findings"
        print(
            f"repro-lint {' '.join(flags)}: {modules_analyzed} modules "
            f"analyzed, {len(new)} new "
            f"{noun}, {len(baselined)} baselined, {len(stale)} stale",
            file=sys.stderr,
        )
    return 1 if new or stale else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        if args.deep:
            from repro.analysis.deep import DEEP_RULES

            for code in sorted(DEEP_RULES):
                name, description = DEEP_RULES[code]
                print(f"{code}  {name}: {description}")
        if args.concurrency:
            from repro.analysis.concurrency import CONCURRENCY_RULES

            for code in sorted(CONCURRENCY_RULES):
                name, description = CONCURRENCY_RULES[code]
                print(f"{code}  {name}: {description}")
        if args.perf:
            from repro.analysis.accounting import ACCOUNTING_RULES
            from repro.analysis.hotpath import HOTPATH_RULES

            perf_rules = {**ACCOUNTING_RULES, **HOTPATH_RULES}
            for code in sorted(perf_rules):
                name, description = perf_rules[code]
                print(f"{code}  {name}: {description}")
        return 0

    if args.deep or args.concurrency or args.perf:
        return _deep_main(args)

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"repro-lint: error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        linter = Linter(select=_split_codes(args.select), ignore=_split_codes(args.ignore))
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    report = linter.lint_paths(args.paths)
    if report.violations:
        print(report.render())
    if not args.quiet:
        noun = "violation" if len(report.violations) == 1 else "violations"
        print(
            f"repro-lint: {report.files_checked} files checked, "
            f"{len(report.violations)} {noun}",
            file=sys.stderr,
        )
    return 1 if report.violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
