"""``repro-lint``: command-line front end for the lint engine.

Exit codes: 0 clean, 1 violations found, 2 usage error.

Also runnable without an installed entry point::

    PYTHONPATH=src python -m repro.analysis.cli src/repro tests
    PYTHONPATH=src python -m repro.analysis src/repro tests
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint import Linter, iter_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific AST lint for the SENN/SNNN reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"repro-lint: error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        linter = Linter(select=_split_codes(args.select), ignore=_split_codes(args.ignore))
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    report = linter.lint_paths(args.paths)
    if report.violations:
        print(report.render())
    if not args.quiet:
        noun = "violation" if len(report.violations) == 1 else "violations"
        print(
            f"repro-lint: {report.files_checked} files checked, "
            f"{len(report.violations)} {noun}",
            file=sys.stderr,
        )
    return 1 if report.violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
