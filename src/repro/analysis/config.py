"""Configuration for the deep (whole-program) analysis passes.

Everything the passes treat as *policy* rather than *mechanism* lives
here, so a reviewer can audit the contracts in one place and a satellite
change (a new entry point, a widened purity zone) is a one-line diff.

See ``docs/static_analysis.md`` ("Deep analysis") for the rationale
behind each table.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

__all__ = [
    "BILLING_ENTRY_POINTS",
    "BILLING_MODULES",
    "CONCURRENT_CLASSES",
    "DEFAULT_BASELINE_NAME",
    "DETERMINISM_ZONES",
    "DOCSTRING_REQUIRED_PREFIXES",
    "ENTRY_POINTS",
    "FRAMEWORK_METHOD_PREFIXES",
    "GUARDED_BY_OWNERS",
    "HOT_ENTRY_POINTS",
    "KNOWN_PAPER_LEMMAS",
    "LAYER_RANKS",
    "LIVENESS_REFERENCE_ROOTS",
    "LOCK_ALIASES",
    "MIRROR_MUTATION_MODULES",
    "PROTOCOL_MODULES",
    "PURITY_ZONES",
    "STATIC_ANALYSIS_MODULES",
    "STRICT_FLOAT_MODULES",
]

#: Default name of the committed deep-analysis baseline file (repo root).
DEFAULT_BASELINE_NAME = "analysis_baseline.txt"

# ----------------------------------------------------------------------
# Call graph / dead code (RPR008)
# ----------------------------------------------------------------------

#: Functions reachable from outside the project: console-script mains,
#: ``python -m`` entry modules, and the pytest plugin.  Qualified names
#: as produced by :mod:`repro.analysis.callgraph` (``module.func`` /
#: ``module.Class.method``).
ENTRY_POINTS: FrozenSet[str] = frozenset(
    {
        "repro.cli.main",
        "repro.analysis.cli.main",
        "repro.testing.cli.main",
        "repro.obs.bench.main",
        "repro.service.cli.main",
    }
)

#: Method-name prefixes invoked reflectively by frameworks (``getattr``
#: dispatch), so a name-resolution call graph never sees the call:
#: ``ast.NodeVisitor.visit_*``, pytest hooks/fixtures/tests.
FRAMEWORK_METHOD_PREFIXES: Tuple[str, ...] = (
    "visit_",
    "pytest_",
    "test_",
)

#: Directories (relative to the repo root) whose references keep project
#: definitions alive even though the files themselves are not analyzed
#: for contracts: a helper used only by the test suite is not dead.
LIVENESS_REFERENCE_ROOTS: Tuple[str, ...] = ("tests", "benchmarks", "examples")

# ----------------------------------------------------------------------
# Purity / determinism (RPR009, RPR010)
# ----------------------------------------------------------------------

#: Modules whose functions must be externally pure: no I/O, no mutation
#: of globals, and no mutation of their arguments (``self`` included for
#: module-level functions; geometry builder methods legitimately mutate
#: ``self`` and are covered by the ``allow_self_mutation`` flag).
#: Maps module prefix -> allow_self_mutation.
PURITY_ZONES: Mapping[str, bool] = {
    # Oracles recompute ground truth from first principles; any side
    # effect would let one differential check perturb the next.
    "repro.testing.oracles": False,
    # The tolerance helpers are the project's comparison vocabulary.
    "repro.geometry.tolerance": False,
    # Geometry predicates and constructors; mutating *self* is allowed
    # (AngularIntervalSet.add, CertainRegion.add_circle are builders)
    # but arguments and globals are off limits.
    "repro.geometry": True,
}

#: Modules that must be bit-exact reproducible: no wall-clock reads, no
#: global-state RNG, no ``id()``-dependent values, no iteration over
#: sets (hash order varies across processes under PYTHONHASHSEED).
#: Replay strings and oracle verdicts both depend on this.
DETERMINISM_ZONES: Tuple[str, ...] = (
    "repro.geometry",
    "repro.testing.oracles",
    "repro.testing.scenarios",
    "repro.core",
    "repro.index",
)

# ----------------------------------------------------------------------
# Float-comparison dataflow (RPR011, RPR012)
# ----------------------------------------------------------------------

#: Modules in which every ordering/equality comparison on a
#: distance-valued expression must be tolerance-routed, lemma-sanctioned
#: (see ``repro.analysis.floatcheck.LEMMA_TABLE``) or justified with a
#: ``# repro: noqa(RPR011)``.
STRICT_FLOAT_MODULES: Tuple[str, ...] = (
    "repro.core.verification",
    "repro.core.heap",
    "repro.core.bounds",
    "repro.core.range_queries",
    "repro.geometry.coverage",
    "repro.index.knn",
)

# ----------------------------------------------------------------------
# Docs hygiene (RPR014)
# ----------------------------------------------------------------------

#: Module prefixes whose public functions, classes and methods must carry
#: docstrings.  Scoped to the packages ``docs/architecture.md`` documents
#: as the algorithmic core -- the lemma citations in these docstrings are
#: the cross-reference surface between code and paper.
DOCSTRING_REQUIRED_PREFIXES: Tuple[str, ...] = (
    "repro.core",
    "repro.index",
    "repro.network",
    "repro.obs",
    "repro.service",
)

#: Lemma numbers the source paper actually defines (Section 3).  A
#: citation of a lemma number outside this set is a typo or a drifted
#: reference; RPR014 flags it.  The numbers pinned in
#: ``floatcheck.LEMMA_TABLE`` are a subset of these (only
#: comparison-bearing lemmas are pinned there).
KNOWN_PAPER_LEMMAS: FrozenSet[str] = frozenset(
    {"3.1", "3.2", "3.3", "3.4", "3.5", "3.6", "3.7", "3.8"}
)

# ----------------------------------------------------------------------
# Concurrency (RPR015-RPR020)
# ----------------------------------------------------------------------

#: Lock synonyms -> canonical node of the lock-order graph.  Used when
#: one lock object travels under several attribute names: the metric
#: instruments hold a reference to the registry's lock, so a ``with
#: self._lock:`` inside ``Counter.inc`` is the *registry* lock.
LOCK_ALIASES: Mapping[str, str] = {
    "Counter._lock": "MetricsRegistry._lock",
    "Gauge._lock": "MetricsRegistry._lock",
    "Histogram._lock": "MetricsRegistry._lock",
}

#: Ownership sentinels accepted by ``# repro: guarded-by(<spec>)`` in
#: place of a lock name.  Each documents *why* a shared field may be
#: written without holding a lock:
#:
#: ``setup``
#:     written only before the object is published to other contexts
#:     (or while re-configuring with every other context quiescent);
#: ``handshake``
#:     written on one thread before a ``threading.Event``/join-style
#:     synchronization point that the readers wait on (happens-before
#:     is provided by the event, not a lock);
#: ``event-loop``
#:     only ever touched from the owning asyncio event-loop thread;
#: ``single-writer``
#:     one designated context writes, concurrent readers tolerate
#:     (and the field is a single atomic reference/primitive).
GUARDED_BY_OWNERS: FrozenSet[str] = frozenset(
    {"setup", "handshake", "event-loop", "single-writer"}
)

#: Classes the concurrency pass must treat as cross-context shared even
#: though it cannot *detect* that (no lock attribute, not a thread
#: target).  Lock-owning classes and ``threading.Thread(target=self.x)``
#: owners are discovered automatically; list here only state that is
#: shared by convention, like the process-wide ``OBS`` switchboard whose
#: flags the service thread reads.
CONCURRENT_CLASSES: FrozenSet[str] = frozenset(
    {
        "repro.obs.profiling.Obs",
    }
)

# ----------------------------------------------------------------------
# Performance & accounting (RPR021-RPR026)
# ----------------------------------------------------------------------

#: Query entry points of the billing model (RPR021): the functions whose
#: call-graph closure constitutes the *checked scopes* -- everything a
#: client-visible query can reach must bill its node scans.  The
#: insertion/bulk-load machinery is deliberately outside this set (its
#: scans are build-time, not billed by the paper's cost model).
BILLING_ENTRY_POINTS: FrozenSet[str] = frozenset(
    {
        "repro.core.server.SpatialDatabaseServer.knn_query_detailed",
        "repro.core.server.SpatialDatabaseServer.range_query_detailed",
        "repro.core.server.SpatialDatabaseServer.window_query_detailed",
        "repro.core.server.SpatialDatabaseServer.incremental_query",
        "repro.service.batching.BatchExecutor.execute",
        "repro.service.engine.ServiceSession.handle",
    }
)

#: Modules the billing model scans for access sites.  Everything that
#: touches ``Node.entries`` on a query path lives here; the simulator
#: and test harnesses consume only the already-billed detailed results.
BILLING_MODULES: Tuple[str, ...] = (
    "repro.index.knn",
    "repro.index.rtree",
    "repro.core.server",
    "repro.service.batching",
    "repro.service.engine",
)

#: Hot-set roots (RPR023-RPR025): the billing entry points plus the
#: verification kernels, whose loops dominate SENN answer latency.
HOT_ENTRY_POINTS: FrozenSet[str] = BILLING_ENTRY_POINTS | frozenset(
    {
        "repro.core.verification.verify_single_peer",
        "repro.core.verification.verify_multi_peer",
    }
)

#: Modules whose ``Node.entries`` mutations must be declared in
#: ``repro.analysis.hotpath.MUTATION_TABLE`` (RPR023).  The mirror
#: *mechanism* (``repro.index.node``) is exempt: its tracked-list
#: mutators perform the invalidation the table documents.
MIRROR_MUTATION_MODULES: Tuple[str, ...] = ("repro.index.rtree",)

#: Modules holding wire codec pairs checked for encode/decode symmetry
#: (RPR026) via their ``_CODECS`` registry.
PROTOCOL_MODULES: Tuple[str, ...] = ("repro.service.protocol",)

# ----------------------------------------------------------------------
# Layering (RPR013)
# ----------------------------------------------------------------------

#: Rank of each package/module prefix; a module may only import modules
#: whose rank is <= its own.  Longest-prefix match wins, so single
#: modules can override their package (``repro.analysis.runtime`` is
#: imported *by* the core data structures and must stay import-free,
#: while ``repro.analysis.invariants`` validates core structures and
#: sits above them).
LAYER_RANKS: Dict[str, int] = {
    "repro": 6,  # the package façade re-exports everything below it
    "repro.version": 0,
    "repro.geometry": 0,
    "repro.analysis.runtime": 0,
    "repro.obs": 0,  # instrumentation facade, imported by index/core/sim
    "repro.obs.bench": 5,  # the repro-bench CLI drives core+sim like repro.cli
    "repro.index": 1,
    "repro.network": 1,
    "repro.core": 2,
    "repro.continuous": 3,
    "repro.io": 3,
    "repro.io.figures": 4,  # serializes experiments.runner.FigureResult
    "repro.service": 3,  # wire protocol + serving engine over core/index
    "repro.service.cli": 5,  # the repro-serve console script
    "repro.sim": 3,
    "repro.analysis.invariants": 3,
    "repro.testing": 3,
    "repro.experiments": 4,
    "repro.cli": 5,
    "repro.analysis": 5,  # static-analysis side; see STATIC_ANALYSIS_MODULES
}

#: The static-analysis side of ``repro.analysis`` must be able to lint a
#: broken tree, so it may import **only** these modules (stdlib aside;
#: exact names, not prefixes).  ``repro.analysis.invariants``/``runtime``
#: are exempt (they are the runtime side and carry their own contracts
#: above).  The package ``__init__`` is listed because importing any
#: submodule runs it; its own imports are all deferred (PEP 562).
STATIC_ANALYSIS_MODULES: Tuple[str, ...] = (
    "repro.analysis",
    "repro.analysis.accounting",
    "repro.analysis.callgraph",
    "repro.analysis.cli",
    "repro.analysis.concurrency",
    "repro.analysis.config",
    "repro.analysis.deep",
    "repro.analysis.floatcheck",
    "repro.analysis.hotpath",
    "repro.analysis.layers",
    "repro.analysis.lint",
    "repro.analysis.locks",
    "repro.analysis.project",
    "repro.analysis.purity",
    "repro.analysis.rules",
)
