"""The project-specific lint rules (``RPR001`` .. ``RPR007``, ``RPR014``).

Each rule encodes one correctness convention of the SENN/SNNN stack;
``docs/static_analysis.md`` documents the rationale and the sanctioned
escape hatches.  Rules are pure AST checks -- no imports of the checked
code -- so the linter can run on broken trees.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.analysis.lint import ModuleContext, Violation, register_rule

__all__ = ["DISTANCE_CALL_NAMES", "DISTANCE_ATTRIBUTE_NAMES"]

#: Call names whose results are treated as distance-valued floats.
DISTANCE_CALL_NAMES: Set[str] = {
    "distance_to",
    "squared_distance_to",
    "distance",
    "squared_distance",
    "mindist",
    "maxdist",
    "network_distance",
    "path_length",
    "hypot",
    "dist",
}

#: Attribute names treated as distance-valued floats.
DISTANCE_ATTRIBUTE_NAMES: Set[str] = {
    "distance",
    "radius",
    "certain_radius",
}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; empty string otherwise."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# RPR001: exact float comparison on distance expressions
# ----------------------------------------------------------------------
class _DistanceTaint(ast.NodeVisitor):
    """Flags ``==`` / ``!=`` where either side is distance-valued.

    An expression is distance-valued when it contains a call to one of
    :data:`DISTANCE_CALL_NAMES`, reads an attribute from
    :data:`DISTANCE_ATTRIBUTE_NAMES`, or is a local name previously
    assigned from a distance-valued expression in the same scope
    (single forward pass; good enough for the straight-line numeric
    code this project writes).

    Carve-out: in test modules, comparisons inside ``assert`` statements
    are exempt -- asserting an exact expected value is the test's
    business, and a float mismatch fails loudly instead of silently
    corrupting an answer.  Comparisons in test *helper logic* are still
    flagged.
    """

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.violations: List[Violation] = []
        self._tainted_stack: List[Set[str]] = [set()]
        self._assert_depth = 0
        top = context.module.split(".", 1)[0] if context.module else ""
        stem = context.module.rsplit(".", 1)[-1] if context.module else ""
        self._is_test_module = (
            top in ("tests", "benchmarks")
            or stem.startswith("test_")
            or stem == "conftest"
        )

    # -- scope handling -------------------------------------------------
    def _enter_scope(self) -> None:
        # Nested functions close over enclosing locals, so they inherit
        # the enclosing scope's taint (a copy: their own assignments must
        # not leak back out).
        self._tainted_stack.append(set(self._tainted))

    def _exit_scope(self) -> None:
        self._tainted_stack.pop()

    @property
    def _tainted(self) -> Set[str]:
        return self._tainted_stack[-1]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    # -- taint ----------------------------------------------------------
    def _is_distance_expr(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = _call_name(sub)
                if name in DISTANCE_CALL_NAMES:
                    return True
            elif isinstance(sub, ast.Attribute):
                if sub.attr in DISTANCE_ATTRIBUTE_NAMES:
                    return True
            elif isinstance(sub, ast.Name):
                if sub.id in self._tainted:
                    return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if self._is_distance_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tainted.add(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if (
            node.value is not None
            and isinstance(node.target, ast.Name)
            and self._is_distance_expr(node.value)
        ):
            self._tainted.add(node.target.id)

    # -- the check ------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._assert_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._assert_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        self.generic_visit(node)
        if self._is_test_module and self._assert_depth:
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(_is_non_float_literal(side) for side in (left, right)):
                continue
            if self._is_distance_expr(left) or self._is_distance_expr(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.violations.append(
                    self.context.violation(
                        node,
                        "RPR001",
                        f"exact float `{symbol}` on a distance expression; use "
                        "repro.geometry.tolerance (feq/fne/near_zero) or add "
                        "`# repro: noqa(RPR001)` with a justification",
                    )
                )
                break


def _is_non_float_literal(node: ast.AST) -> bool:
    """Literals that make the comparison clearly not a float equality."""
    if isinstance(node, ast.Constant):
        return not isinstance(node.value, (int, float)) or isinstance(node.value, bool)
    return False


@register_rule(
    "RPR001",
    "float-eq-distance",
    "exact ==/!= on float distance expressions (use the tolerance helpers)",
)
def rule_float_eq_distance(context: ModuleContext) -> Iterator[Violation]:
    visitor = _DistanceTaint(context)
    visitor.visit(context.tree)
    yield from visitor.violations


# ----------------------------------------------------------------------
# RPR002: unseeded RNG construction outside sim.config
# ----------------------------------------------------------------------
_GLOBAL_STATE_RNG_FUNCS = {
    "seed",
    "random",
    "randint",
    "randrange",
    "uniform",
    "normal",
    "gauss",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "permutation",
    "rand",
    "randn",
}


@register_rule(
    "RPR002",
    "unseeded-rng",
    "unseeded random.Random()/numpy RNG construction or global-state RNG calls "
    "outside sim.config",
)
def rule_unseeded_rng(context: ModuleContext) -> Iterator[Violation]:
    if context.module in ("repro.sim.config",):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        head = dotted.split(".", 1)[0] if dotted else ""
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        seeded = bool(node.args) or any(
            kw.arg == "seed" and not _is_none(kw.value) for kw in node.keywords
        )
        if tail in ("Random", "default_rng", "RandomState") and head in (
            "random",
            "np",
            "numpy",
        ):
            if not seeded:
                yield context.violation(
                    node,
                    "RPR002",
                    f"unseeded RNG construction `{dotted}()`; pass an explicit "
                    "seed (derived from sim.config) so runs are reproducible",
                )
        elif (
            head in ("random", "np", "numpy")
            and tail in _GLOBAL_STATE_RNG_FUNCS
            and dotted in (f"random.{tail}", f"np.random.{tail}", f"numpy.random.{tail}")
        ):
            yield context.violation(
                node,
                "RPR002",
                f"global-state RNG call `{dotted}()`; construct a seeded "
                "Generator/Random instead",
            )


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# ----------------------------------------------------------------------
# RPR003: Euclidean distance inside network/
# ----------------------------------------------------------------------
_EUCLIDEAN_CALLS = {"distance_to", "squared_distance_to", "distance", "squared_distance"}


@register_rule(
    "RPR003",
    "euclid-in-network",
    "Euclidean Point distance call inside repro.network (network distance required)",
)
def rule_euclid_in_network(context: ModuleContext) -> Iterator[Violation]:
    if not context.module.startswith("repro.network"):
        return
    if context.module.startswith("repro.testing"):
        # Oracle modules re-derive ground truth (including the network
        # kNN oracle, which runs over a flattened adjacency mapping) with
        # raw arithmetic by design -- independence from the code under
        # test is enforced by RPR007 instead.  Listed here explicitly so
        # a future widening of this rule's scope does not capture them.
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _EUCLIDEAN_CALLS:
                yield context.violation(
                    node,
                    "RPR003",
                    f"Euclidean `{name}` inside repro.network; use network "
                    "(shortest-path) distance, or `# repro: noqa(RPR003)` when "
                    "the Euclidean value is an intentional lower bound",
                )


# ----------------------------------------------------------------------
# RPR004: mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}


@register_rule(
    "RPR004",
    "mutable-default",
    "mutable default argument (list/dict/set literals or constructors)",
)
def rule_mutable_default(context: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield context.violation(
                    default,
                    "RPR004",
                    "mutable default argument; default to None and construct "
                    "inside the function body",
                )


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name in _MUTABLE_CALLS
    return False


# ----------------------------------------------------------------------
# RPR005: bare except
# ----------------------------------------------------------------------
@register_rule(
    "RPR005",
    "bare-except",
    "bare `except:` clause (catch a specific exception type)",
)
def rule_bare_except(context: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield context.violation(
                node,
                "RPR005",
                "bare `except:` swallows SystemExit/KeyboardInterrupt; name the "
                "exception type (use `except Exception` at minimum)",
            )


# ----------------------------------------------------------------------
# RPR006: missing __all__ in public library modules
# ----------------------------------------------------------------------
@register_rule(
    "RPR006",
    "missing-all",
    "public repro module without an `__all__` declaration",
    module_scope=True,
)
def rule_missing_all(context: ModuleContext) -> Iterator[Violation]:
    if not context.module.startswith("repro"):
        return  # only the library package has a public API surface
    stem = context.module.rsplit(".", 1)[-1]
    if stem.startswith("_"):
        return
    has_public_definition = False
    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                has_public_definition = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        return
                    if not target.id.startswith("_"):
                        has_public_definition = True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                if node.target.id == "__all__":
                    return
                if not node.target.id.startswith("_"):
                    has_public_definition = True
    if has_public_definition:
        yield context.module_violation(
            "RPR006",
            "public module defines names but no `__all__`; declare the public "
            "surface explicitly",
        )


# ----------------------------------------------------------------------
# RPR007: oracle independence (repro.testing.oracles)
# ----------------------------------------------------------------------
#: Modules holding differential-test oracles.  Their entire value is
#: recomputing ground truth from first principles, so importing the code
#: under test would silently turn the differential comparison into a
#: tautology.
_ORACLE_MODULES = ("repro.testing.oracles",)

#: The only shared vocabulary: the plain ``Point`` value type.
_ORACLE_ALLOWED_IMPORTS = ("repro.geometry.point",)


@register_rule(
    "RPR007",
    "oracle-independence",
    "differential-test oracle module importing the code under test",
)
def rule_oracle_independence(context: ModuleContext) -> Iterator[Violation]:
    if context.module not in _ORACLE_MODULES:
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
            relative = False
        elif isinstance(node, ast.ImportFrom):
            targets = [node.module or ""]
            relative = node.level > 0
        else:
            continue
        for target in targets:
            if relative:
                # Relative imports resolve inside repro.testing, where the
                # implementation-facing runner lives: always a violation.
                shown = "." * getattr(node, "level", 1) + target
            elif target == "repro" or target.startswith("repro."):
                if target in _ORACLE_ALLOWED_IMPORTS:
                    continue
                shown = target
            else:
                continue  # stdlib / third-party imports are fine
            yield context.violation(
                node,
                "RPR007",
                f"oracle module imports `{shown}`; oracles must stay "
                "independent of the code under test (only "
                f"{', '.join(_ORACLE_ALLOWED_IMPORTS)} is shared)",
            )


# ----------------------------------------------------------------------
# RPR014: docs hygiene (docstrings + canonical lemma citations)
# ----------------------------------------------------------------------
#: Candidate paper citations: any spelling/casing of lemma/section/sec
#: followed by a number.  Each candidate is then tested against
#: :data:`_CANONICAL_CITATION` -- matching loosely and validating
#: strictly is what catches "lemma" in lowercase or "Sec. X.Y" drift.
_CITATION_CANDIDATE = re.compile(
    r"\b(?:lemma|section|sec)s?\.?[ \t]*\d+(?:\.\d+)*", re.IGNORECASE
)

#: The canonical citation forms used throughout the repo and docs.
_CANONICAL_CITATION = re.compile(r"(?:Lemma|Section)s? \d+(?:\.\d+)*$")

_LEMMA_NUMBER = re.compile(r"Lemmas? (\d+(?:\.\d+)*)")


def _known_lemma_numbers() -> Set[str]:
    """Paper lemma numbers: the config set plus everything pinned in
    ``floatcheck.LEMMA_TABLE`` (imported lazily; the table lives in the
    same static-analysis layer, so this cannot pull in checked code)."""
    from repro.analysis.config import KNOWN_PAPER_LEMMAS
    from repro.analysis.floatcheck import LEMMA_TABLE

    known = set(KNOWN_PAPER_LEMMAS)
    for entry in LEMMA_TABLE:
        known.update(_LEMMA_NUMBER.findall(entry.lemma))
    return known


def _is_public_def(node: ast.AST) -> bool:
    return isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ) and not node.name.startswith("_")


@register_rule(
    "RPR014",
    "docs-hygiene",
    "missing docstrings on the documented-core public API, or paper "
    "citations that are non-canonical or cite a nonexistent lemma",
)
def rule_docs_hygiene(context: ModuleContext) -> Iterator[Violation]:
    from repro.analysis.config import DOCSTRING_REQUIRED_PREFIXES

    # -- docstring presence on the documented core's public surface -----
    if any(
        context.module == prefix or context.module.startswith(prefix + ".")
        for prefix in DOCSTRING_REQUIRED_PREFIXES
    ):
        public_defs: List[ast.AST] = [
            node for node in context.tree.body if _is_public_def(node)
        ]
        for node in list(public_defs):
            if isinstance(node, ast.ClassDef):
                public_defs.extend(
                    child for child in node.body if _is_public_def(child)
                )
        for node in public_defs:
            assert isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield context.violation(
                    node,
                    "RPR014",
                    f"public {kind} `{node.name}` has no docstring; the "
                    "documented core (repro.core/index/obs) is the paper "
                    "cross-reference surface -- cite the lemma or section "
                    "it implements where one applies",
                )

    # -- canonical citation form + lemma existence ----------------------
    known_lemmas: Optional[Set[str]] = None
    for lineno, line in enumerate(context.lines, start=1):
        for match in _CITATION_CANDIDATE.finditer(line):
            cited = match.group(0)
            if not _CANONICAL_CITATION.match(cited):
                yield Violation(
                    context.path,
                    lineno,
                    match.start(),
                    "RPR014",
                    f"non-canonical paper citation `{cited}`; write "
                    "`Lemma X.Y` / `Section X.Y` so citations can be "
                    "cross-checked against the lemma table",
                )
                continue
            lemma_match = _LEMMA_NUMBER.match(cited)
            if lemma_match is None:
                continue  # a Section citation; form is all we check
            if known_lemmas is None:
                known_lemmas = _known_lemma_numbers()
            number = lemma_match.group(1)
            if number not in known_lemmas:
                yield Violation(
                    context.path,
                    lineno,
                    match.start(),
                    "RPR014",
                    f"citation of `{cited}` but the paper defines no such "
                    "lemma (see analysis.config.KNOWN_PAPER_LEMMAS); fix "
                    "the number or extend the known set",
                )
