"""Module import graph and name-resolution call graph (deep pass 1).

Two graphs over the parsed :class:`~repro.analysis.project.Project`:

- the **import graph**: module -> imported project modules, split into
  top-level and deferred (function-scope) imports.  The layering
  contract (:mod:`repro.analysis.layers`) and the import-cycle check
  are judged on the top-level edges only, because deferred imports are
  the sanctioned cycle-breaking device in this codebase;
- the **call graph**: an AST-built graph over every top-level function
  and class method.  Calls through bare names are resolved through the
  module's import/def table; ``self.m()`` resolves to the enclosing
  class; all other attribute calls fall back to *name matching* (every
  known function with that name becomes a candidate).  The graph is
  therefore an over-approximation: reachability is sound for dead-code
  detection (RPR008) but may keep a same-named helper alive.

The extracted per-module facts serialize to JSON
(:meth:`CallGraph.facts_to_json`) keyed by source SHA-256, which is how
CI shares the parse between the lint and deep jobs.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.project import Project, ProjectModule

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "ImportGraph",
    "ImportRecord",
    "build_call_graph",
    "build_import_graph",
    "dead_code_report",
]


# ----------------------------------------------------------------------
# import graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImportRecord:
    """One import statement edge, resolved to a project module."""

    source: str  # importing module
    target: str  # imported project module (dotted)
    raw: str  # the name as written (dotted, after relative resolution)
    lineno: int
    top_level: bool


@dataclass
class ImportGraph:
    """Module-level dependency graph restricted to project modules."""

    records: List[ImportRecord] = field(default_factory=list)

    def edges(self, top_level_only: bool = True) -> Dict[str, Set[str]]:
        result: Dict[str, Set[str]] = {}
        for record in self.records:
            if top_level_only and not record.top_level:
                continue
            result.setdefault(record.source, set()).add(record.target)
        return result

    def cycles(self) -> List[List[str]]:
        """Elementary cycles among top-level imports (Tarjan SCCs > 1)."""
        graph = self.edges(top_level_only=True)
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    result.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return result


def build_import_graph(project: Project) -> ImportGraph:
    graph = ImportGraph()
    for module in project.modules.values():
        graph.records.extend(_module_imports(project, module))
    return graph


def _module_imports(project: Project, module: ProjectModule) -> Iterator[ImportRecord]:
    top_level_nodes = set(_top_level_statements(module.tree))
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, node)
            if base is None:
                continue
            # `from pkg import name` may pull a submodule or a symbol;
            # resolve_import collapses both onto the defining module.
            names = [f"{base}.{alias.name}" if base else alias.name for alias in node.names]
            names.append(base)
        else:
            continue
        for raw in names:
            if not raw:
                continue
            target = project.resolve_import(raw)
            if target is None or target == module.name:
                continue
            yield ImportRecord(
                source=module.name,
                target=target,
                raw=raw,
                lineno=node.lineno,
                top_level=node in top_level_nodes,
            )


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    for node in tree.body:
        yield node
        # Imports guarded by `if TYPE_CHECKING:` (or any other top-level
        # `if`) still execute at import time unless the guard is false;
        # TYPE_CHECKING guards are recognized and treated as deferred.
        if isinstance(node, ast.If) and not _is_type_checking_guard(node.test):
            yield from node.body
            yield from node.orelse


def _is_type_checking_guard(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: ProjectModule, node: ast.ImportFrom) -> Optional[str]:
    if node.level == 0:
        return node.module or ""
    parts = module.name.split(".")
    # For a package __init__, level 1 is the package itself.
    cut = len(parts) - node.level + (1 if module.is_package else 0)
    if cut < 0:
        return None
    base_parts = parts[:cut]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One call inside a function, after best-effort resolution."""

    lineno: int
    #: Candidate callee qualnames.  Exactly one for a resolved call;
    #: several for a name-matched attribute call; empty for calls into
    #: the stdlib / third-party code.
    candidates: Tuple[str, ...]
    #: True when the candidates come from exact resolution rather than
    #: bare-name matching.
    resolved: bool
    #: Caller parameter used as the receiver (``x.m()`` with ``x`` a
    #: parameter; ``self`` included), if any.
    receiver_param: Optional[str]
    #: Caller parameters passed as positional arguments: (position, name).
    param_args: Tuple[Tuple[int, str], ...]
    #: Bare method name for unresolved attribute calls (``x.append`` ->
    #: ``append``); lets the purity pass name-match effects.
    attr: Optional[str] = None


@dataclass
class FunctionInfo:
    """One top-level function or class method."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    params: Tuple[str, ...]
    decorators: Tuple[str, ...]
    #: Bare names + attribute names referenced anywhere in the body.
    references: FrozenSet[str]
    call_sites: Tuple[CallSite, ...] = ()

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")

    @property
    def is_framework_hook(self) -> bool:
        return self.name.startswith(config.FRAMEWORK_METHOD_PREFIXES)


@dataclass
class CallGraph:
    """The project call graph plus the liveness machinery."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: bare name -> qualnames defined with that name (project modules only)
    by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: module name -> names referenced at module scope (includes __all__)
    module_references: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: source SHA-256 per module, for the facts cache
    hashes: Dict[str, str] = field(default_factory=dict)

    # -- queries -------------------------------------------------------
    def edges_from(self, qualname: str) -> Set[str]:
        """Callees of one function (resolved + name-matched)."""
        info = self.functions.get(qualname)
        if info is None:
            return set()
        out: Set[str] = set()
        for site in info.call_sites:
            out.update(site.candidates)
        # Function references (decorator use, callbacks, aliasing) count
        # as edges too: passing a function along keeps it reachable.
        for name in info.references:
            for target in self.by_name.get(name, ()):
                if target != qualname:
                    out.add(target)
        return out

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure over :meth:`edges_from`."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for succ in self.edges_from(current):
                if succ not in seen:
                    stack.append(succ)
        return seen

    def liveness_roots(self) -> Set[str]:
        """Functions considered externally invoked."""
        roots: Set[str] = set()
        for qualname, info in self.functions.items():
            if qualname in config.ENTRY_POINTS:
                roots.add(qualname)
            elif info.is_dunder or info.is_framework_hook:
                roots.add(qualname)
            elif info.decorators:
                # Registered via a decorator (rule registries, pytest
                # fixtures, properties): invoked reflectively.
                roots.add(qualname)
        # Anything referenced by name at module scope (includes __all__
        # exports, i.e. the public API surface).
        for names in self.module_references.values():
            for name in names:
                roots.update(self.by_name.get(name, ()))
        return roots

    def live(self) -> Set[str]:
        return self.reachable(sorted(self.liveness_roots()))

    def dead(self) -> List[FunctionInfo]:
        live = self.live()
        return sorted(
            (info for qualname, info in self.functions.items() if qualname not in live),
            key=lambda info: (info.module, info.lineno),
        )

    # -- facts cache ---------------------------------------------------
    def facts_to_json(self) -> str:
        payload = {
            "version": 1,
            "hashes": self.hashes,
            "module_references": {
                module: sorted(names)
                for module, names in self.module_references.items()
            },
            "functions": [
                {
                    "qualname": info.qualname,
                    "module": info.module,
                    "name": info.name,
                    "cls": info.cls,
                    "lineno": info.lineno,
                    "params": list(info.params),
                    "decorators": list(info.decorators),
                    "references": sorted(info.references),
                    "call_sites": [
                        {
                            "lineno": site.lineno,
                            "candidates": list(site.candidates),
                            "resolved": site.resolved,
                            "receiver_param": site.receiver_param,
                            "param_args": [list(pair) for pair in site.param_args],
                            "attr": site.attr,
                        }
                        for site in info.call_sites
                    ],
                }
                for info in self.functions.values()
            ],
        }
        return json.dumps(payload, indent=0, sort_keys=True)

    @staticmethod
    def facts_from_json(text: str) -> Optional["CallGraph"]:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return None
        graph = CallGraph()
        graph.hashes = dict(payload.get("hashes", {}))
        graph.module_references = {
            module: frozenset(names)
            for module, names in payload.get("module_references", {}).items()
        }
        for raw in payload.get("functions", []):
            info = FunctionInfo(
                qualname=raw["qualname"],
                module=raw["module"],
                name=raw["name"],
                cls=raw.get("cls"),
                lineno=raw["lineno"],
                params=tuple(raw.get("params", ())),
                decorators=tuple(raw.get("decorators", ())),
                references=frozenset(raw.get("references", ())),
                call_sites=tuple(
                    CallSite(
                        lineno=site["lineno"],
                        candidates=tuple(site.get("candidates", ())),
                        resolved=bool(site.get("resolved")),
                        receiver_param=site.get("receiver_param"),
                        param_args=tuple(
                            (int(pos), str(name))
                            for pos, name in site.get("param_args", ())
                        ),
                        attr=site.get("attr"),
                    )
                    for site in raw.get("call_sites", ())
                ),
            )
            graph.functions[info.qualname] = info
            graph.by_name.setdefault(info.name, []).append(info.qualname)
        return graph


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_call_graph(
    project: Project, cached: Optional[CallGraph] = None
) -> CallGraph:
    """Extract facts from every module (reusing ``cached`` where hashes match)."""
    graph = CallGraph()
    cached_by_module: Dict[str, List[FunctionInfo]] = {}
    if cached is not None:
        for info in cached.functions.values():
            cached_by_module.setdefault(info.module, []).append(info)

    for module in project.all_modules():
        analyzed = module.name in project.modules
        sha = source_sha(module.source)
        graph.hashes[module.name] = sha
        if (
            cached is not None
            and cached.hashes.get(module.name) == sha
            and module.name in cached.module_references
        ):
            graph.module_references[module.name] = cached.module_references[module.name]
            if analyzed:
                for info in cached_by_module.get(module.name, []):
                    graph.functions[info.qualname] = info
                    graph.by_name.setdefault(info.name, []).append(info.qualname)
            continue
        _extract_module(graph, project, module, record_defs=analyzed)

    return graph


# ----------------------------------------------------------------------
# fact extraction
# ----------------------------------------------------------------------
def _extract_module(
    graph: CallGraph,
    project: Project,
    module: ProjectModule,
    record_defs: bool,
) -> None:
    scope = _ModuleScope(project, module)
    module_refs: Set[str] = set()

    def collect_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, cls: Optional[str]
    ) -> None:
        qualname = (
            f"{module.name}.{cls}.{node.name}" if cls else f"{module.name}.{node.name}"
        )
        params = tuple(
            arg.arg
            for arg in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
                *([node.args.vararg] if node.args.vararg else []),
                *([node.args.kwarg] if node.args.kwarg else []),
            ]
        )
        references: Set[str] = set()
        call_sites: List[CallSite] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id != node.name:
                references.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                references.add(sub.attr)
            if isinstance(sub, ast.Call):
                site = _resolve_call(scope, cls, set(params), sub)
                if site is not None:
                    call_sites.append(site)
        decorators = tuple(
            _decorator_name(dec) for dec in node.decorator_list
        )
        # Decorator names used on this function reference those functions.
        module_refs.update(name for name in decorators if name)
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            cls=cls,
            lineno=node.lineno,
            params=params,
            decorators=tuple(d for d in decorators if d),
            references=frozenset(references),
            call_sites=tuple(call_sites),
        )
        if record_defs:
            graph.functions[qualname] = info
            graph.by_name.setdefault(node.name, []).append(qualname)
        else:
            # Reference-only modules (tests, benchmarks): their bodies
            # keep project functions alive but are not analyzed.
            module_refs.update(references)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            collect_function(node, None)
        elif isinstance(node, ast.ClassDef):
            module_refs.add(node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    collect_function(item, node.name)
                else:
                    _collect_refs(item, module_refs)
            for base in node.bases + [kw.value for kw in node.keywords]:
                _collect_refs(base, module_refs)
            for dec in node.decorator_list:
                _collect_refs(dec, module_refs)
        else:
            _collect_refs(node, module_refs)
            _collect_all_exports(node, module_refs)

    existing = graph.module_references.get(module.name, frozenset())
    graph.module_references[module.name] = frozenset(module_refs) | existing


def _collect_refs(node: ast.AST, into: Set[str]) -> None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            into.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            into.add(sub.attr)


def _collect_all_exports(node: ast.stmt, into: Set[str]) -> None:
    targets: List[ast.expr] = []
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        targets, value = node.targets, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets, value = [node.target], node.value
    elif isinstance(node, ast.AugAssign):
        targets, value = [node.target], node.value
    for target in targets:
        if isinstance(target, ast.Name) and target.id == "__all__" and value is not None:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    into.add(sub.value)


def _decorator_name(node: ast.expr) -> str:
    current = node
    if isinstance(current, ast.Call):
        current = current.func
    if isinstance(current, ast.Attribute):
        return current.attr
    if isinstance(current, ast.Name):
        return current.id
    return ""


def _dotted_chain(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; empty string otherwise."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


class _ModuleScope:
    """Name -> qualname resolution table for one module."""

    def __init__(self, project: Project, module: ProjectModule) -> None:
        self.project = project
        self.module = module
        #: local top-level definitions: name -> qualname
        self.defs: Dict[str, str] = {}
        #: methods per class: class -> {method -> qualname}
        self.methods: Dict[str, Dict[str, str]] = {}
        #: imported bare names: alias -> dotted target
        self.imports: Dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.defs[node.name] = f"{module.name}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                self.defs[node.name] = f"{module.name}.{node.name}"
                table: Dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[item.name] = f"{module.name}.{node.name}.{item.name}"
                self.methods[node.name] = table
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    self.imports[bound] = alias.name if alias.asname else alias.name.split(".", 1)[0]
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def resolve_name(self, name: str) -> Optional[str]:
        """Resolve a bare name to a project function/class qualname."""
        if name in self.defs:
            return self.defs[name]
        dotted = self.imports.get(name)
        if dotted is None:
            return None
        return self._resolve_dotted(dotted)

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        owner = self.project.resolve_import(dotted)
        if owner is None:
            return None
        if owner == dotted:
            return None  # a module, not a function/class
        symbol = dotted[len(owner) + 1 :]
        owner_module = self.project.get(owner)
        if owner_module is None or "." in symbol:
            return None
        for node in owner_module.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and node.name == symbol
            ):
                return f"{owner}.{symbol}"
        return None


def _resolve_call(
    scope: _ModuleScope,
    cls: Optional[str],
    params: Set[str],
    call: ast.Call,
) -> Optional[CallSite]:
    param_args = tuple(
        (position, arg.id)
        for position, arg in enumerate(call.args)
        if isinstance(arg, ast.Name) and arg.id in params
    )
    func = call.func
    if isinstance(func, ast.Name):
        resolved = scope.resolve_name(func.id)
        if resolved is not None:
            candidates = _callable_targets(scope, resolved)
            return CallSite(call.lineno, candidates, True, None, param_args)
        # Unknown bare name (builtin, closure); name matching by the
        # reference set covers liveness, nothing to record here.
        return None
    if isinstance(func, ast.Attribute):
        receiver = func.value
        receiver_param: Optional[str] = None
        if isinstance(receiver, ast.Name):
            if receiver.id in params:
                receiver_param = receiver.id
            if receiver.id in ("self", "cls") and cls is not None:
                table = scope.methods.get(cls, {})
                if func.attr in table:
                    return CallSite(
                        call.lineno, (table[func.attr],), True, receiver_param, param_args
                    )
            dotted = _dotted_chain(func)
            if dotted:
                resolved = scope._resolve_dotted(dotted)
                if resolved is None and "." in dotted:
                    head = dotted.split(".", 1)[0]
                    mapped = scope.imports.get(head)
                    if mapped is not None:
                        resolved = scope._resolve_dotted(
                            dotted.replace(head, mapped, 1)
                        )
                if resolved is not None:
                    candidates = _callable_targets(scope, resolved)
                    return CallSite(call.lineno, candidates, True, receiver_param, param_args)
        # Fallback: record the bare attribute name; liveness is covered
        # by the reference set, purity matches the name itself.
        return CallSite(call.lineno, (), False, receiver_param, param_args, func.attr)
    return None


def _callable_targets(scope: _ModuleScope, qualname: str) -> Tuple[str, ...]:
    """Map a resolved symbol to callable targets (class -> its methods)."""
    module_name, _, symbol = qualname.rpartition(".")
    owner = scope.project.get(module_name)
    if owner is None:
        return (qualname,)
    for node in owner.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == symbol:
            # Constructing a class reaches __init__/__post_init__ and,
            # conservatively, every method (instances escape the graph).
            targets = [
                f"{qualname}.{item.name}"
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            return tuple(targets) if targets else (qualname,)
    return (qualname,)


def dead_code_report(graph: CallGraph) -> List[str]:
    """Human-readable dead-code findings, one line per function."""
    lines = []
    for info in graph.dead():
        lines.append(
            f"{info.module}:{info.lineno}: {info.qualname} is unreachable "
            "from every entry point"
        )
    return lines
