"""The deep (whole-program) analysis driver: ``repro-lint --deep``.

The per-module rules of :mod:`repro.analysis.rules` cannot see across
files.  This driver loads the whole project once
(:mod:`repro.analysis.project`), builds the import and call graphs
(:mod:`repro.analysis.callgraph`), runs the interprocedural passes and
folds their findings into the engine's :class:`~repro.analysis.lint.
Violation` shape so suppression, rendering and CI treatment stay uniform:

========  ============================================================
RPR008    dead code: functions unreachable from every liveness root
RPR009    side effect inside a purity zone (oracles, geometry)
RPR010    nondeterminism inside a determinism zone (replay surfaces)
RPR011    raw float comparison on a distance-valued expression
RPR012    lemma-conformance breach (direction flip, stale table entry)
RPR013    layering-contract or import-cycle violation
========  ============================================================

``# repro: noqa(CODE)`` works on the reported line as usual; for RPR009/
RPR010 a noqa at the *origin* of an effect (the ``hash()`` probe, the
cache-fill assignment) additionally stops the effect from propagating,
so one justified suppression covers the whole transitive caller set.

Findings can be ratcheted through a committed baseline file
(:func:`load_baseline` / :func:`partition_violations`): only findings
not in the baseline fail the build, and stale entries are reported so
the file can only shrink.  The call-graph facts cache
(:func:`load_cached_graph` / :func:`save_graph_cache`) lets CI reuse the
parse between jobs; modules are keyed by source SHA-256 so a stale cache
degrades to a cold start, never to wrong results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import (
    CallGraph,
    ImportGraph,
    build_call_graph,
    build_import_graph,
)
from repro.analysis.floatcheck import (
    float_comparison_violations,
    lemma_conformance_violations,
)
from repro.analysis.layers import cycle_violations, layer_violations
from repro.analysis.lint import (
    ALL_CODES,
    Violation,
    _collect_suppressions,
)
from repro.analysis.project import Project, load_project
from repro.analysis.purity import (
    FunctionEffects,
    determinism_violations,
    infer_effects,
    purity_violations,
)

__all__ = [
    "DEEP_RULES",
    "DeepAnalysis",
    "analyze_project",
    "apply_suppressions",
    "baseline_key",
    "load_baseline",
    "load_cached_graph",
    "partition_violations",
    "run_deep",
    "save_baseline",
    "save_graph_cache",
    "suppression_oracle",
]

#: Code -> (name, description), mirroring the shallow rule catalogue.
DEEP_RULES: Dict[str, Tuple[str, str]] = {
    "RPR008": (
        "dead-code",
        "function unreachable from every entry point, export, dunder, "
        "framework hook or test reference",
    ),
    "RPR009": (
        "purity-zone-violation",
        "I/O, global mutation or argument mutation inside a purity zone "
        "(repro.testing.oracles, repro.geometry)",
    ),
    "RPR010": (
        "determinism-zone-violation",
        "wall-clock, global RNG, id()/hash(), or set-iteration order "
        "inside a determinism zone (geometry, core, index, oracles)",
    ),
    "RPR011": (
        "raw-distance-comparison",
        "ordering/equality on a distance-valued expression bypassing "
        "repro.geometry.tolerance in a strict-float module",
    ),
    "RPR012": (
        "lemma-conformance",
        "verifier/heap comparison deviating from its paper lemma "
        "(direction, operands, required coverage call)",
    ),
    "RPR013": (
        "layering-contract",
        "top-level import against the declared layer order, into the "
        "static-analysis zone, or forming a cycle",
    ),
}


@dataclass
class DeepAnalysis:
    """Everything one deep run produced (reused by tests and the CLI)."""

    project: Project
    graph: CallGraph
    import_graph: ImportGraph
    effects: Dict[str, FunctionEffects]
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_deep(
    roots: Sequence[Path],
    reference_roots: Sequence[Path] = (),
    cached: Optional[CallGraph] = None,
) -> DeepAnalysis:
    """Load the project from disk and analyze it."""
    project = load_project(roots, reference_roots)
    return analyze_project(project, cached=cached)


def analyze_project(
    project: Project, cached: Optional[CallGraph] = None
) -> DeepAnalysis:
    """Run every deep pass over an already-loaded project."""
    graph = build_call_graph(project, cached)
    import_graph = build_import_graph(project)
    oracle = suppression_oracle(project)
    effects = infer_effects(
        project, graph, import_graph=import_graph, is_suppressed=oracle
    )
    paths = {name: module.path for name, module in project.modules.items()}

    violations: List[Violation] = []
    for path, message in project.errors:
        violations.append(Violation(path, 1, 0, "RPR900", f"cannot parse file: {message}"))

    for info in graph.dead():
        violations.append(
            Violation(
                paths[info.module],
                info.lineno,
                0,
                "RPR008",
                f"`{info.qualname}` is unreachable from every entry point, "
                "export or test; delete it or add a liveness root "
                "(repro.analysis.config.ENTRY_POINTS)",
            )
        )

    for info, effect, witness in purity_violations(graph, effects):
        violations.append(
            Violation(
                paths[info.module],
                witness.lineno,
                0,
                "RPR009",
                f"`{info.qualname}` {effect.value} inside a purity zone: "
                f"{witness.description}",
            )
        )

    for info, witness in determinism_violations(graph, effects):
        violations.append(
            Violation(
                paths[info.module],
                witness.lineno,
                0,
                "RPR010",
                f"`{info.qualname}` is nondeterministic inside a determinism "
                f"zone: {witness.description}",
            )
        )

    for site, message in float_comparison_violations(project):
        violations.append(
            Violation(paths[site.module], site.lineno, site.col, "RPR011", message)
        )

    for module_name, lineno, message in lemma_conformance_violations(project):
        violations.append(Violation(paths[module_name], lineno, 0, "RPR012", message))

    for record, message in layer_violations(import_graph):
        violations.append(
            Violation(paths[record.source], record.lineno, 0, "RPR013", message)
        )
    for module_name, message in cycle_violations(import_graph):
        violations.append(Violation(paths[module_name], 1, 0, "RPR013", message))

    violations = apply_suppressions(project, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return DeepAnalysis(
        project=project,
        graph=graph,
        import_graph=import_graph,
        effects=effects,
        violations=violations,
    )


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------
def suppression_oracle(project: Project) -> Callable[[str, int, str], bool]:
    """``(module, lineno, code) -> suppressed?`` backed by noqa comments."""
    cache: Dict[str, Dict[int, Set[str]]] = {}

    def lookup(module: str) -> Dict[int, Set[str]]:
        table = cache.get(module)
        if table is None:
            loaded = project.get(module)
            table = _collect_suppressions(loaded.lines) if loaded is not None else {}
            cache[module] = table
        return table

    def is_suppressed(module: str, lineno: int, code: str) -> bool:
        codes = lookup(module).get(lineno)
        if codes is None:
            return False
        return codes is ALL_CODES or code in codes

    return is_suppressed


def apply_suppressions(
    project: Project, violations: List[Violation]
) -> List[Violation]:
    """Drop violations a ``# repro: noqa(CODE)`` comment covers.

    Shared with :mod:`repro.analysis.concurrency`, which folds its
    findings through the same machinery so suppression semantics stay
    uniform across ``--deep`` and ``--concurrency``.
    """
    by_path: Dict[str, Dict[int, Set[str]]] = {}
    file_wide: Dict[str, Set[str]] = {}
    for module in project.modules.values():
        table = _collect_suppressions(module.lines)
        by_path[module.path] = table
        named: Set[str] = set()
        for codes in table.values():
            if codes is not ALL_CODES:
                named.update(codes)
        file_wide[module.path] = named

    kept: List[Violation] = []
    for violation in violations:
        codes = by_path.get(violation.path, {}).get(violation.line)
        if codes is not None and (codes is ALL_CODES or violation.code in codes):
            continue
        # Findings anchored at line 1 are module-scope (stale table
        # entries, import cycles): a named directive anywhere suppresses.
        if violation.line == 1 and violation.code in file_wide.get(violation.path, set()):
            continue
        kept.append(violation)
    return kept


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
def baseline_key(violation: Violation) -> str:
    """Line-number-free identity so unrelated edits do not churn the file."""
    return f"{violation.path}: {violation.code} {violation.message}"


def load_baseline(path: Path) -> List[str]:
    """Baseline entries (one key per line; blanks and ``#`` comments skipped)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    entries: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            entries.append(stripped)
    return entries


def save_baseline(path: Path, violations: Sequence[Violation]) -> None:
    lines = [
        "# repro-lint --deep baseline: known findings that do not fail CI.",
        "# Regenerate with `repro-lint --deep --update-baseline`; the goal",
        "# is for this file to stay empty.",
    ]
    lines.extend(sorted({baseline_key(v) for v in violations}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def partition_violations(
    violations: Sequence[Violation], baseline: Sequence[str]
) -> Tuple[List[Violation], List[Violation], List[str]]:
    """Split into (new, baselined) and report stale baseline entries."""
    known = set(baseline)
    seen: Set[str] = set()
    new: List[Violation] = []
    baselined: List[Violation] = []
    for violation in violations:
        key = baseline_key(violation)
        if key in known:
            baselined.append(violation)
            seen.add(key)
        else:
            new.append(violation)
    stale = sorted(known - seen)
    return new, baselined, stale


# ----------------------------------------------------------------------
# call-graph facts cache
# ----------------------------------------------------------------------
def load_cached_graph(path: Path) -> Optional[CallGraph]:
    """A previously saved facts cache, or None when unusable."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    return CallGraph.facts_from_json(text)


def save_graph_cache(path: Path, graph: CallGraph) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(graph.facts_to_json(), encoding="utf-8")


def default_reference_roots(base: Path) -> List[Path]:
    """The liveness reference roots that exist under ``base``."""
    return [
        base / name
        for name in config.LIVENESS_REFERENCE_ROOTS
        if (base / name).is_dir()
    ]
