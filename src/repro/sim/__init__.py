"""Mobility simulation substrate (Section 4.1's simulator).

- :mod:`repro.sim.grid` -- uniform-grid spatial hash for peer discovery
  within the wireless transmission range;
- :mod:`repro.sim.mobility` -- the random waypoint model (free movement)
  and road-network mobility with per-segment speed limits;
- :mod:`repro.sim.config` -- simulation parameter sets, including the Los
  Angeles / Riverside / Synthetic Suburbia configurations of Tables 3-4;
- :mod:`repro.sim.stats` -- SQRR and resolution-tier metrics;
- :mod:`repro.sim.simulation` -- the event loop tying hosts, mobility,
  query workload and the server together.
"""

from repro.sim.config import (
    MovementMode,
    ParameterSet,
    SimulationConfig,
    los_angeles_2x2,
    los_angeles_30x30,
    riverside_2x2,
    riverside_30x30,
    suburbia_2x2,
    suburbia_30x30,
)
from repro.sim.grid import UniformGrid
from repro.sim.latency import LatencyModel
from repro.sim.mobility import FreeTrajectory, RoadTrajectory, Trajectory
from repro.sim.simulation import Simulation
from repro.sim.stats import SimulationMetrics
from repro.sim.trace import QueryEvent, QueryTrace

__all__ = [
    "FreeTrajectory",
    "LatencyModel",
    "MovementMode",
    "ParameterSet",
    "QueryEvent",
    "QueryTrace",
    "RoadTrajectory",
    "Simulation",
    "SimulationConfig",
    "SimulationMetrics",
    "Trajectory",
    "UniformGrid",
    "los_angeles_2x2",
    "los_angeles_30x30",
    "riverside_2x2",
    "riverside_30x30",
    "suburbia_2x2",
    "suburbia_30x30",
]
