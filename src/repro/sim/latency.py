"""Query latency model.

The paper claims three benefits for peer-to-peer cooperative caching:
"improving access latency, reducing server workload and alleviating
point-to-point channel congestion".  The evaluation section quantifies
the second; this module adds a simple, explicit cost model so the first
can be measured too:

- a query answered by peers pays one ad-hoc probe round per contacted
  peer plus a transfer cost per cached tuple received;
- a query forwarded to the server additionally pays the cellular round
  trip plus a per-page service time at the server.

The defaults are deliberately round numbers typical for 2005-era
802.11 ad-hoc links and cellular data links; everything is a knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.senn import ResolutionTier

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-query latency decomposition (milliseconds)."""

    p2p_probe_ms: float = 5.0  # one ad-hoc request/response exchange
    p2p_tuple_ms: float = 0.2  # transferring one cached NN tuple
    server_rtt_ms: float = 150.0  # cellular round trip to the base station
    server_page_ms: float = 8.0  # per R*-tree page served

    def __post_init__(self) -> None:
        for name in ("p2p_probe_ms", "p2p_tuple_ms", "server_rtt_ms", "server_page_ms"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    def query_latency_ms(
        self,
        tier: ResolutionTier,
        peer_probes: int,
        tuples_received: int,
        server_pages: int,
    ) -> float:
        """Latency of one query under this model.

        Peer probing happens for every query (the SENN pipeline always
        polls the neighborhood first); the server leg is added only when
        the query escalates.
        """
        latency = (
            peer_probes * self.p2p_probe_ms + tuples_received * self.p2p_tuple_ms
        )
        if tier is ResolutionTier.SERVER:
            latency += self.server_rtt_ms + server_pages * self.server_page_ms
        return latency
