"""Uniform-grid spatial hash for peer discovery.

The simulator must repeatedly answer "which hosts are within the wireless
transmission range of ``Q``?"  A uniform grid with cell size equal to the
search radius answers that in O(1) expected time: only the 3x3 block of
cells around the query point needs scanning.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.geometry.point import Point

__all__ = ["UniformGrid"]


class UniformGrid:
    """A spatial hash of id -> position with fixed cell size."""

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], Set[Hashable]] = {}
        self._positions: Dict[Hashable, Point] = {}

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            math.floor(point.x / self.cell_size),
            math.floor(point.y / self.cell_size),
        )

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._positions

    def insert(self, item_id: Hashable, position: Point) -> None:
        """Insert or move an item."""
        if item_id in self._positions:
            self.remove(item_id)
        self._positions[item_id] = position
        self._cells.setdefault(self._cell_of(position), set()).add(item_id)

    def remove(self, item_id: Hashable) -> None:
        position = self._positions.pop(item_id, None)
        if position is None:
            return
        cell = self._cell_of(position)
        members = self._cells.get(cell)
        if members is not None:
            members.discard(item_id)
            if not members:
                del self._cells[cell]

    def update(self, item_id: Hashable, position: Point) -> None:
        """Move an item; cheaper than remove+insert when the cell is the same."""
        old = self._positions.get(item_id)
        if old is None:
            self.insert(item_id, position)
            return
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(position)
        self._positions[item_id] = position
        if old_cell != new_cell:
            members = self._cells.get(old_cell)
            if members is not None:
                members.discard(item_id)
                if not members:
                    del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item_id)

    def position_of(self, item_id: Hashable) -> Point:
        return self._positions[item_id]

    def within_range(
        self, center: Point, radius: float, exclude: Optional[Hashable] = None
    ) -> List[Hashable]:
        """All items within the closed disk of ``radius`` around ``center``."""
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        results: List[Hashable] = []
        min_cx = math.floor((center.x - radius) / self.cell_size)
        max_cx = math.floor((center.x + radius) / self.cell_size)
        min_cy = math.floor((center.y - radius) / self.cell_size)
        max_cy = math.floor((center.y + radius) / self.cell_size)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                for item_id in self._cells.get((cx, cy), ()):
                    if item_id == exclude:
                        continue
                    if center.distance_to(self._positions[item_id]) <= radius:
                        results.append(item_id)
        return results

    def clear(self) -> None:
        self._cells.clear()
        self._positions.clear()
