"""Simulation metrics: the SQRR breakdown of Section 4.

The paper's mobile-host metric is the *spatial query request rate*
(SQRR): the share of client queries that must be processed by the remote
server.  Its figures additionally split the peer-resolved share into
single-peer and multi-peer buckets.  :class:`SimulationMetrics`
accumulates tier counts and reports the three percentage series the
figures plot, plus the server-side page-access statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.senn import ResolutionTier

__all__ = ["SimulationMetrics"]


@dataclass
class SimulationMetrics:
    """Aggregated outcome of one simulation run."""

    tier_counts: Dict[ResolutionTier, int] = field(
        default_factory=lambda: {tier: 0 for tier in ResolutionTier}
    )
    total_server_pages: int = 0
    server_query_count: int = 0
    warmup_queries: int = 0
    # P2P communication overhead (the cost side of the trade-off).
    total_peer_probes: int = 0
    total_tuples_received: int = 0
    # Latency accounting (populated when the simulation has a model).
    total_latency_ms: float = 0.0
    latency_by_tier: Dict[ResolutionTier, float] = field(
        default_factory=lambda: {tier: 0.0 for tier in ResolutionTier}
    )

    def record(
        self,
        tier: ResolutionTier,
        server_pages: int = 0,
        peer_probes: int = 0,
        tuples_received: int = 0,
        latency_ms: float = 0.0,
    ) -> None:
        self.tier_counts[tier] += 1
        self.total_peer_probes += peer_probes
        self.total_tuples_received += tuples_received
        self.total_latency_ms += latency_ms
        self.latency_by_tier[tier] += latency_ms
        if tier is ResolutionTier.SERVER:
            self.total_server_pages += server_pages
            self.server_query_count += 1

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def total_queries(self) -> int:
        return sum(self.tier_counts.values())

    def share(self, tier: ResolutionTier) -> float:
        """Fraction of recorded queries resolved at ``tier`` (0-1)."""
        total = self.total_queries
        return self.tier_counts[tier] / total if total else 0.0

    @property
    def server_share(self) -> float:
        """SQRR: the fraction of queries the server had to process."""
        return self.share(ResolutionTier.SERVER)

    @property
    def single_peer_share(self) -> float:
        """Queries solved by one peer's cache (the host's own included --
        it is a cached result from a single past query location)."""
        return self.share(ResolutionTier.LOCAL_CACHE) + self.share(
            ResolutionTier.SINGLE_PEER
        )

    @property
    def multi_peer_share(self) -> float:
        return self.share(ResolutionTier.MULTI_PEER)

    @property
    def peer_share(self) -> float:
        """All queries answered without the server (certain answers only)."""
        return self.single_peer_share + self.multi_peer_share

    def mean_server_pages(self) -> float:
        """Mean page accesses per server-processed query (the PAR input)."""
        if self.server_query_count == 0:
            return 0.0
        return self.total_server_pages / self.server_query_count

    def mean_peer_probes(self) -> float:
        """Mean ad-hoc probes sent per query (communication overhead)."""
        total = self.total_queries
        return self.total_peer_probes / total if total else 0.0

    def mean_tuples_received(self) -> float:
        """Mean NN tuples transferred over the P2P channel per query."""
        total = self.total_queries
        return self.total_tuples_received / total if total else 0.0

    def mean_latency_ms(self) -> float:
        """Mean query latency under the simulation's latency model."""
        total = self.total_queries
        return self.total_latency_ms / total if total else 0.0

    def mean_latency_for(self, tier: ResolutionTier) -> float:
        """Mean latency of queries resolved at ``tier``."""
        count = self.tier_counts[tier]
        return self.latency_by_tier[tier] / count if count else 0.0

    def percentages(self) -> Dict[str, float]:
        """The three series of Figures 9-16, in percent."""
        return {
            "server": 100.0 * self.server_share,
            "single_peer": 100.0 * self.single_peer_share,
            "multi_peer": 100.0 * self.multi_peer_share,
        }

    def __repr__(self) -> str:
        p = self.percentages()
        return (
            f"SimulationMetrics(queries={self.total_queries}, "
            f"server={p['server']:.1f}%, single={p['single_peer']:.1f}%, "
            f"multi={p['multi_peer']:.1f}%)"
        )
