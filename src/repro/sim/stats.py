"""Simulation metrics: the SQRR breakdown of Section 4.

The paper's mobile-host metric is the *spatial query request rate*
(SQRR): the share of client queries that must be processed by the remote
server.  Its figures additionally split the peer-resolved share into
single-peer and multi-peer buckets.

:class:`SimulationMetrics` is a thin façade over a private, always-on
:class:`repro.obs.MetricsRegistry`: :meth:`record` increments labelled
counters (``sim.queries{tier=...}``, ``sim.server_pages``,
``sim.latency_ms{tier=...}``, ...) and every derived statistic — SQRR,
the per-tier shares, the PAR input — is re-derived from the registry on
read.  The registry is per-instance (not the global ``OBS`` one) so two
concurrent simulations never mix their accounting, and it ignores the
``REPRO_OBS`` switch: SQRR is a simulation *result*, not optional
telemetry.  ``repro-bench`` snapshots :attr:`registry` directly.
"""

from __future__ import annotations

from typing import Dict

from repro.core.senn import ResolutionTier
from repro.obs import MetricsRegistry

__all__ = ["SimulationMetrics"]


class SimulationMetrics:
    """Aggregated outcome of one simulation run, backed by a registry."""

    __slots__ = ("registry", "warmup_queries")

    def __init__(self) -> None:
        """Create an empty metrics façade with a fresh private registry."""
        self.registry = MetricsRegistry()
        self.warmup_queries = 0

    def record(
        self,
        tier: ResolutionTier,
        server_pages: int = 0,
        peer_probes: int = 0,
        tuples_received: int = 0,
        latency_ms: float = 0.0,
    ) -> None:
        """Account one steady-state query resolved at ``tier``."""
        registry = self.registry
        registry.counter("sim.queries", tier=tier.value).inc()
        registry.counter("sim.peer_probes").inc(peer_probes)
        registry.counter("sim.tuples_received").inc(tuples_received)
        registry.counter("sim.latency_ms", tier=tier.value).inc(latency_ms)
        if tier is ResolutionTier.SERVER:
            registry.counter("sim.server_pages").inc(server_pages)
            registry.counter("sim.server_queries").inc()

    # ------------------------------------------------------------------
    # registry-derived raw counters (the pre-PR-5 public attributes)
    # ------------------------------------------------------------------
    @property
    def tier_counts(self) -> Dict[ResolutionTier, int]:
        """Recorded query count per resolution tier (all tiers present)."""
        return {
            tier: int(self.registry.value("sim.queries", tier=tier.value))
            for tier in ResolutionTier
        }

    @property
    def total_server_pages(self) -> int:
        """Total server page accesses over all SERVER-tier queries."""
        return int(self.registry.value("sim.server_pages"))

    @property
    def server_query_count(self) -> int:
        """Number of queries the server had to process."""
        return int(self.registry.value("sim.server_queries"))

    @property
    def total_peer_probes(self) -> int:
        """Total ad-hoc peer probes sent (P2P communication overhead)."""
        return int(self.registry.value("sim.peer_probes"))

    @property
    def total_tuples_received(self) -> int:
        """Total NN tuples transferred over the P2P channel."""
        return int(self.registry.value("sim.tuples_received"))

    @property
    def total_latency_ms(self) -> float:
        """Summed query latency under the simulation's latency model."""
        return self.registry.total("sim.latency_ms")

    @property
    def latency_by_tier(self) -> Dict[ResolutionTier, float]:
        """Summed latency per resolution tier (all tiers present)."""
        return {
            tier: self.registry.value("sim.latency_ms", tier=tier.value)
            for tier in ResolutionTier
        }

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def total_queries(self) -> int:
        """Number of recorded (post-warm-up) queries."""
        return int(self.registry.total("sim.queries"))

    def share(self, tier: ResolutionTier) -> float:
        """Fraction of recorded queries resolved at ``tier`` (0-1)."""
        total = self.total_queries
        if total == 0:
            return 0.0
        return self.registry.value("sim.queries", tier=tier.value) / total

    @property
    def server_share(self) -> float:
        """SQRR: the fraction of queries the server had to process."""
        return self.share(ResolutionTier.SERVER)

    @property
    def single_peer_share(self) -> float:
        """Queries solved by one peer's cache (the host's own included --
        it is a cached result from a single past query location)."""
        return self.share(ResolutionTier.LOCAL_CACHE) + self.share(
            ResolutionTier.SINGLE_PEER
        )

    @property
    def multi_peer_share(self) -> float:
        """Queries solved by merging several peers' certain circles."""
        return self.share(ResolutionTier.MULTI_PEER)

    @property
    def peer_share(self) -> float:
        """All queries answered without the server (certain answers only)."""
        return self.single_peer_share + self.multi_peer_share

    def mean_server_pages(self) -> float:
        """Mean page accesses per server-processed query (the PAR input)."""
        count = self.server_query_count
        if count == 0:
            return 0.0
        return self.total_server_pages / count

    def mean_peer_probes(self) -> float:
        """Mean ad-hoc probes sent per query (communication overhead)."""
        total = self.total_queries
        return self.total_peer_probes / total if total else 0.0

    def mean_tuples_received(self) -> float:
        """Mean NN tuples transferred over the P2P channel per query."""
        total = self.total_queries
        return self.total_tuples_received / total if total else 0.0

    def mean_latency_ms(self) -> float:
        """Mean query latency under the simulation's latency model."""
        total = self.total_queries
        return self.total_latency_ms / total if total else 0.0

    def mean_latency_for(self, tier: ResolutionTier) -> float:
        """Mean latency of queries resolved at ``tier``."""
        count = self.tier_counts[tier]
        return self.latency_by_tier[tier] / count if count else 0.0

    def percentages(self) -> Dict[str, float]:
        """The three series of Figures 9-16, in percent."""
        return {
            "server": 100.0 * self.server_share,
            "single_peer": 100.0 * self.single_peer_share,
            "multi_peer": 100.0 * self.multi_peer_share,
        }

    def __repr__(self) -> str:
        p = self.percentages()
        return (
            f"SimulationMetrics(queries={self.total_queries}, "
            f"server={p['server']:.1f}%, single={p['single_peer']:.1f}%, "
            f"multi={p['multi_peer']:.1f}%)"
        )
