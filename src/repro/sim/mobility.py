"""Mobility models: random waypoint and road-network driving.

The paper's movement generator has two modes (Section 4.1):

- *free movement*: the random waypoint model [Broch et al. 1998] -- each
  host picks a uniform random destination inside the area, travels to it
  in a straight line at a fixed velocity, pauses for a random interval,
  and repeats;
- *road network*: hosts drive along the road graph towards random
  destination junctions; the travel speed on each segment is the host's
  desired velocity capped by the segment's speed limit.

Both models expose the same interface: :meth:`Trajectory.advance`
progresses simulated time and :attr:`Trajectory.position` reports the
current position.  Advancing is exact (it walks leg by leg), so the
simulator can use arbitrarily large time steps without drift.

Units: distances in miles, speeds in miles per hour, time in seconds.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from repro.geometry.point import Point
from repro.network.dijkstra import shortest_path
from repro.network.graph import SpatialNetwork

__all__ = ["Trajectory", "FreeTrajectory", "RoadTrajectory"]

_SECONDS_PER_HOUR = 3600.0


class Trajectory(Protocol):
    """Common interface of all mobility models."""

    @property
    def position(self) -> Point:
        """Current position in plane coordinates (miles)."""
        ...

    def advance(self, dt_seconds: float) -> Point:
        """Progress ``dt_seconds`` of simulated time; returns the new position."""
        ...


class StationaryTrajectory:
    """A host that never moves (the non-moving share, ``M_Percentage``)."""

    def __init__(self, position: Point) -> None:
        self._position = position

    @property
    def position(self) -> Point:
        return self._position

    def advance(self, dt_seconds: float) -> Point:
        if dt_seconds < 0.0:
            raise ValueError("dt must be non-negative")
        return self._position


class FreeTrajectory:
    """Random waypoint movement in a rectangular area."""

    def __init__(
        self,
        width: float,
        height: float,
        speed_mph: float,
        rng: np.random.Generator,
        pause_max_s: float = 60.0,
        start: Optional[Point] = None,
    ) -> None:
        if width <= 0.0 or height <= 0.0:
            raise ValueError("area dimensions must be positive")
        if speed_mph <= 0.0:
            raise ValueError("speed must be positive")
        if pause_max_s < 0.0:
            raise ValueError("pause_max_s must be non-negative")
        self._width = width
        self._height = height
        self._speed_mi_per_s = speed_mph / _SECONDS_PER_HOUR
        self._pause_max_s = pause_max_s
        self._rng = rng
        self._position = start if start is not None else self._random_point()
        self._destination = self._random_point()
        self._pause_remaining = 0.0

    @property
    def position(self) -> Point:
        return self._position

    def _random_point(self) -> Point:
        return Point(
            float(self._rng.uniform(0.0, self._width)),
            float(self._rng.uniform(0.0, self._height)),
        )

    def advance(self, dt_seconds: float) -> Point:
        if dt_seconds < 0.0:
            raise ValueError("dt must be non-negative")
        remaining = dt_seconds
        while remaining > 1e-12:
            if self._pause_remaining > 0.0:
                consumed = min(self._pause_remaining, remaining)
                self._pause_remaining -= consumed
                remaining -= consumed
                continue
            to_destination = self._position.distance_to(self._destination)
            travel_budget = self._speed_mi_per_s * remaining
            if travel_budget < to_destination:
                self._position = self._position.towards(
                    self._destination, travel_budget
                )
                remaining = 0.0
            else:
                self._position = self._destination
                if to_destination > 0.0:
                    remaining -= to_destination / self._speed_mi_per_s
                self._pause_remaining = float(
                    self._rng.uniform(0.0, self._pause_max_s)
                )
                self._destination = self._random_point()
        return self._position


class RoadTrajectory:
    """Driving along the road network between random destinations.

    The host starts at a random network node, plans a shortest path to a
    random destination node, and drives it edge by edge.  Its speed on
    each edge is ``min(desired_speed, edge speed limit)`` -- the paper's
    "each mobile host monitors the speed limit on the road that it is
    currently traveling on and adjusts its velocity accordingly".
    """

    def __init__(
        self,
        network: SpatialNetwork,
        desired_speed_mph: float,
        rng: np.random.Generator,
        pause_max_s: float = 60.0,
        start_node: Optional[int] = None,
    ) -> None:
        if desired_speed_mph <= 0.0:
            raise ValueError("desired speed must be positive")
        if pause_max_s < 0.0:
            raise ValueError("pause_max_s must be non-negative")
        if network.node_count < 2:
            raise ValueError("road mobility needs a network with >= 2 nodes")
        self._network = network
        self._desired_mph = desired_speed_mph
        self._pause_max_s = pause_max_s
        self._rng = rng
        self._node_ids = sorted(network.node_ids())
        self._current_node = (
            start_node
            if start_node is not None
            else int(rng.choice(self._node_ids))
        )
        self._position = network.node_position(self._current_node)
        # Remaining node sequence to drive (excluding the current node).
        self._route: List[int] = []
        self._edge_progress = 0.0  # miles along the current edge
        self._pause_remaining = 0.0

    @property
    def position(self) -> Point:
        return self._position

    @property
    def current_node(self) -> int:
        """The node the host last departed from (or stands on)."""
        return self._current_node

    def _plan_route(self) -> None:
        """Pick a random reachable destination and plan the path to it."""
        for _ in range(10):
            destination = int(self._rng.choice(self._node_ids))
            if destination == self._current_node:
                continue
            path = shortest_path(self._network, self._current_node, destination)
            if path is not None and len(path) > 1:
                self._route = path[1:]
                self._edge_progress = 0.0
                return
        # Isolated pocket (should not happen on generated networks): stay.
        self._route = []

    def _edge_speed_mi_per_s(self, u: int, v: int) -> float:
        edge = self._network.edge_between(u, v)
        assert edge is not None
        mph = min(self._desired_mph, edge.speed_limit_mph)
        return mph / _SECONDS_PER_HOUR

    def advance(self, dt_seconds: float) -> Point:
        if dt_seconds < 0.0:
            raise ValueError("dt must be non-negative")
        remaining = dt_seconds
        while remaining > 1e-12:
            if self._pause_remaining > 0.0:
                consumed = min(self._pause_remaining, remaining)
                self._pause_remaining -= consumed
                remaining -= consumed
                continue
            if not self._route:
                self._plan_route()
                if not self._route:
                    break
            next_node = self._route[0]
            edge = self._network.edge_between(self._current_node, next_node)
            assert edge is not None
            speed = self._edge_speed_mi_per_s(self._current_node, next_node)
            edge_left = edge.length - self._edge_progress
            travel_budget = speed * remaining
            if travel_budget < edge_left:
                self._edge_progress += travel_budget
                remaining = 0.0
            else:
                remaining -= edge_left / speed
                self._current_node = next_node
                self._route.pop(0)
                self._edge_progress = 0.0
                if not self._route:
                    # Arrived at the destination: pause, then re-plan lazily.
                    self._pause_remaining = float(
                        self._rng.uniform(0.0, self._pause_max_s)
                    )
            self._update_position()
        return self._position

    def _update_position(self) -> None:
        if not self._route:
            self._position = self._network.node_position(self._current_node)
            return
        next_node = self._route[0]
        start = self._network.node_position(self._current_node)
        end = self._network.node_position(next_node)
        edge = self._network.edge_between(self._current_node, next_node)
        assert edge is not None
        fraction = self._edge_progress / edge.length
        self._position = Point(
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )
