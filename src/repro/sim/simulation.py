"""The simulation event loop (Section 4.1's simulator).

One :class:`Simulation` wires together:

- a world: the square area, its POIs (gas stations), and -- in road mode
  -- a generated road network;
- the remote :class:`~repro.core.server.SpatialDatabaseServer` indexing
  the POIs with an R*-tree;
- the mobile hosts, each with a mobility trajectory, a local cache and
  the SENN pipeline;
- a Poisson query workload: exponential inter-arrival times with the
  configured system-wide rate; each arrival picks a uniformly random
  host, which then executes SENN against its in-range peers.

Movement advances in fixed ticks (default 2 s of simulated time: at
50 mph a host moves ~45 m per tick, well under the 200 m transmission
range), and the peer-discovery grid is refreshed each tick.  Queries
arriving within a tick use the tick's positions.

Metrics are recorded only after the warm-up fraction of the run, matching
the paper's "all simulation results were recorded after the system
reached steady state".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.obs import OBS, span
from repro.core.backend import SpatialBackend
from repro.core.host import MobileHost
from repro.core.server import SpatialDatabaseServer
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import SpatialNetwork
from repro.sim.config import MovementMode, SimulationConfig
from repro.sim.grid import UniformGrid
from repro.sim.mobility import (
    FreeTrajectory,
    RoadTrajectory,
    StationaryTrajectory,
    Trajectory,
)
from repro.sim.stats import SimulationMetrics
from repro.sim.trace import QueryEvent, QueryTrace

__all__ = ["Simulation"]


class Simulation:
    """A full, reproducible simulation run."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        params = config.parameters
        self.area = params.area_miles

        # --- road network ------------------------------------------------
        self.network: Optional[SpatialNetwork] = None
        if config.movement_mode is MovementMode.ROAD_NETWORK:
            spec = RoadNetworkSpec(
                width=self.area,
                height=self.area,
                secondary_spacing=config.road_secondary_spacing,
                seed=config.seed,
            )
            self.network = generate_road_network(spec)

        # --- POIs and server ---------------------------------------------
        self.pois = self._generate_pois()
        self.server = SpatialDatabaseServer.from_points(
            self.pois, algorithm=config.server_algorithm
        )
        # The backend the hosts talk to: the server itself, or -- with
        # ``use_service`` -- the same server behind the query service's
        # loopback transport, so every query round-trips the wire codec.
        self.backend: SpatialBackend = self.server
        if config.use_service:
            from repro.service.client import ServiceClient
            from repro.service.engine import QueryService
            from repro.service.transport import LoopbackTransport

            self.backend = ServiceClient(
                LoopbackTransport(QueryService(self.server))
            )

        # --- hosts ---------------------------------------------------------
        self.hosts: List[MobileHost] = []
        self._trajectories: List[Trajectory] = []
        self._create_hosts()

        # --- peer discovery grid -------------------------------------------
        cell = max(params.tx_range_miles, 1e-6)
        self.grid = UniformGrid(cell_size=cell)
        for host in self.hosts:
            self.grid.insert(host.host_id, host.position)

        self.metrics = SimulationMetrics()
        # The trace records every query, warm-up included, so steady-state
        # analysis can see the cold start.
        self.trace: Optional[QueryTrace] = (
            QueryTrace() if config.record_trace else None
        )
        if OBS.enabled:
            OBS.registry.gauge("sim.hosts").set(len(self.hosts))
            OBS.registry.gauge("sim.pois").set(len(self.pois))

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _generate_pois(self) -> List[Tuple[Point, str]]:
        params = self.config.parameters
        centers = None
        if self.config.poi_clusters is not None:
            centers = self.rng.uniform(
                0.0, self.area, size=(self.config.poi_clusters, 2)
            )
        pois: List[Tuple[Point, str]] = []
        for i in range(params.poi_number):
            if centers is None:
                raw = Point(
                    float(self.rng.uniform(0.0, self.area)),
                    float(self.rng.uniform(0.0, self.area)),
                )
            else:
                center = centers[int(self.rng.integers(len(centers)))]
                sigma = self.config.poi_cluster_sigma_miles
                raw = Point(
                    float(min(max(center[0] + self.rng.normal(0.0, sigma), 0.0), self.area)),
                    float(min(max(center[1] + self.rng.normal(0.0, sigma), 0.0), self.area)),
                )
            if self.network is not None and self.config.snap_pois_to_roads:
                raw = self.network.snap(raw).point
            pois.append((raw, f"poi-{i}"))
        return pois

    def _create_hosts(self) -> None:
        params = self.config.parameters
        senn_config = self.config.senn_config()
        moving_share = params.m_percentage / 100.0
        for host_id in range(params.mh_number):
            trajectory = self._make_trajectory(moving_share)
            self._trajectories.append(trajectory)
            self.hosts.append(MobileHost(host_id, trajectory.position, senn_config))

    def _make_trajectory(self, moving_share: float) -> Trajectory:
        params = self.config.parameters
        moving = bool(self.rng.uniform() < moving_share)
        if self.network is not None:
            node_ids = sorted(self.network.node_ids())
            start = int(self.rng.choice(node_ids))
            if not moving:
                return StationaryTrajectory(self.network.node_position(start))
            return RoadTrajectory(
                self.network,
                desired_speed_mph=params.m_velocity,
                rng=self.rng,
                pause_max_s=self.config.pause_max_s,
                start_node=start,
            )
        start_point = Point(
            float(self.rng.uniform(0.0, self.area)),
            float(self.rng.uniform(0.0, self.area)),
        )
        if not moving:
            return StationaryTrajectory(start_point)
        return FreeTrajectory(
            self.area,
            self.area,
            speed_mph=params.m_velocity,
            rng=self.rng,
            pause_max_s=self.config.pause_max_s,
            start=start_point,
        )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationMetrics:
        """Execute the configured duration and return the metrics."""
        duration = self.config.duration_s
        warmup_end = duration * self.config.warmup_fraction
        tick = self.config.movement_tick_s
        rate = self.config.query_rate_per_s

        now = 0.0
        next_query = float(self.rng.exponential(1.0 / rate))
        warmup_reset_done = self.config.warmup_fraction == 0.0
        while now < duration:
            tick_end = min(now + tick, duration)
            with span("sim.phase.advance"):
                self._advance_hosts(tick_end - now)
            now = tick_end
            while next_query <= now:
                if not warmup_reset_done and next_query >= warmup_end:
                    self.server.reset_statistics()
                    warmup_reset_done = True
                with span("sim.phase.query"):
                    self._issue_query(record=next_query >= warmup_end,
                                      timestamp=next_query)
                next_query += float(self.rng.exponential(1.0 / rate))
        return self.metrics

    def _advance_hosts(self, dt: float) -> None:
        if dt <= 0.0:
            return
        for host, trajectory in zip(self.hosts, self._trajectories):
            new_position = trajectory.advance(dt)
            if new_position != host.position:
                host.position = new_position
                self.grid.update(host.host_id, new_position)

    def _issue_query(self, record: bool, timestamp: float) -> None:
        host = self.hosts[int(self.rng.integers(len(self.hosts)))]
        peer_ids = self.grid.within_range(
            host.position,
            self.config.parameters.tx_range_miles,
            exclude=host.host_id,
        )
        peers = [self.hosts[peer_id] for peer_id in peer_ids]
        probes_before = host.peer_probes_sent
        tuples_before = host.tuples_received
        is_range = (
            self.config.range_query_fraction > 0.0
            and self.rng.uniform() < self.config.range_query_fraction
        )
        if is_range:
            parameter = self.config.range_radius_miles
            result = host.query_range(
                parameter,
                peers=peers,
                server=self.backend,
                timestamp=timestamp,
            )
        else:
            parameter = float(self._choose_k())
            result = host.query_knn(
                k=int(parameter), peers=peers, server=self.backend,
                timestamp=timestamp,
            )
        probes = host.peer_probes_sent - probes_before
        tuples = host.tuples_received - tuples_before
        latency = self.config.latency_model.query_latency_ms(
            result.tier, probes, tuples, result.server_pages
        )
        if self.trace is not None:
            self.trace.record(
                QueryEvent(
                    timestamp=timestamp,
                    host_id=host.host_id,
                    kind="range" if is_range else "knn",
                    parameter=parameter,
                    tier=result.tier,
                    server_pages=result.server_pages,
                    peer_probes=probes,
                    tuples_received=tuples,
                    latency_ms=latency,
                )
            )
        if record:
            self.metrics.record(
                result.tier,
                result.server_pages,
                peer_probes=probes,
                tuples_received=tuples,
                latency_ms=latency,
            )
        else:
            self.metrics.warmup_queries += 1

    def _choose_k(self) -> int:
        if self.config.k_range is not None:
            low, high = self.config.k_range
            return int(self.rng.integers(low, high + 1))
        return self.config.parameters.lambda_knn

    def __repr__(self) -> str:
        mode = self.config.movement_mode.value
        return (
            f"Simulation({self.config.parameters.name}, {mode}, "
            f"{len(self.hosts)} hosts, {len(self.pois)} POIs)"
        )
