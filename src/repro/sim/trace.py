"""Query-event tracing and steady-state analysis.

The paper records its metrics "after the system reached steady state".
To make that defensible rather than folklore, the simulator can record a
full query trace -- one event per query with its timestamp, issuing
host, resolution tier and costs -- and this module provides the
time-bucketed analysis that shows where the steady state begins:
the server share starts near 100 % (cold caches) and settles once the
population's caches have turned over.

Traces also export to CSV for external analysis.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.senn import ResolutionTier

__all__ = ["QueryEvent", "QueryTrace", "SteadyStateReport"]


@dataclass(frozen=True)
class QueryEvent:
    """One issued query, as recorded by the simulator."""

    timestamp: float  # simulated seconds
    host_id: int
    kind: str  # "knn" or "range"
    parameter: float  # k for kNN, radius for range queries
    tier: ResolutionTier
    server_pages: int
    peer_probes: int
    tuples_received: int
    latency_ms: float = 0.0


@dataclass
class SteadyStateReport:
    """Server share per time bucket, plus a convergence estimate."""

    bucket_seconds: float
    bucket_starts: List[float]
    server_shares: List[float]  # fraction in [0, 1] per bucket
    query_counts: List[int]

    def settled_after(self, tolerance: float = 0.15) -> Optional[float]:
        """Earliest bucket start from which the server share stays within
        ``tolerance`` of the final bucket's share.  ``None`` if never."""
        if not self.server_shares:
            return None
        final = self.server_shares[-1]
        settled_from: Optional[float] = None
        for start, share in zip(self.bucket_starts, self.server_shares):
            if abs(share - final) <= tolerance:
                if settled_from is None:
                    settled_from = start
            else:
                settled_from = None
        return settled_from


class QueryTrace:
    """An append-only record of query events."""

    def __init__(self) -> None:
        self._events: List[QueryEvent] = []

    def record(self, event: QueryEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[QueryEvent]:
        return list(self._events)

    def events_for_host(self, host_id: int) -> List[QueryEvent]:
        return [event for event in self._events if event.host_id == host_id]

    def server_share(self) -> float:
        if not self._events:
            return 0.0
        server = sum(
            1 for event in self._events if event.tier is ResolutionTier.SERVER
        )
        return server / len(self._events)

    # ------------------------------------------------------------------
    # steady-state analysis
    # ------------------------------------------------------------------
    def steady_state_report(self, bucket_seconds: float) -> SteadyStateReport:
        """Bucket the trace by time and compute per-bucket server shares."""
        if bucket_seconds <= 0.0:
            raise ValueError("bucket_seconds must be positive")
        buckets: Dict[int, List[QueryEvent]] = {}
        for event in self._events:
            buckets.setdefault(int(event.timestamp // bucket_seconds), []).append(event)
        starts: List[float] = []
        shares: List[float] = []
        counts: List[int] = []
        for index in sorted(buckets):
            events = buckets[index]
            starts.append(index * bucket_seconds)
            counts.append(len(events))
            server = sum(
                1 for event in events if event.tier is ResolutionTier.SERVER
            )
            shares.append(server / len(events))
        return SteadyStateReport(bucket_seconds, starts, shares, counts)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def write_csv(self, path: Union[str, Path]) -> None:
        """Dump the trace as CSV with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "timestamp",
                    "host_id",
                    "kind",
                    "parameter",
                    "tier",
                    "server_pages",
                    "peer_probes",
                    "tuples_received",
                    "latency_ms",
                ]
            )
            for event in self._events:
                writer.writerow(
                    [
                        event.timestamp,
                        event.host_id,
                        event.kind,
                        event.parameter,
                        event.tier.value,
                        event.server_pages,
                        event.peer_probes,
                        event.tuples_received,
                        event.latency_ms,
                    ]
                )
