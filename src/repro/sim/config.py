"""Simulation parameter sets (Tables 2-4 of the paper).

A :class:`ParameterSet` is one column of Table 3 (2x2 miles) or Table 4
(30x30 miles): Los Angeles County (dense urban), Riverside County (sparse
rural) and the blended Synthetic Suburbia.  :class:`SimulationConfig`
adds the knobs the paper's experiments vary (movement mode, coverage
backend, k selection) plus reproduction-specific controls:

- ``area_factor`` -- density-preserving scale-down: simulating a
  ``factor``-sized window of the county keeps host/POI densities and the
  per-area query rate exact while shrinking compute.  The 30x30 parameter
  sets (121,500 vehicles in LA) are run through this for benchmarks; see
  EXPERIMENTS.md;
- ``t_execution_s`` override -- SQRR is a steady-state ratio, so shorter
  metered windows after warm-up preserve the reported shapes.

Units: areas in miles, velocities in mph, transmission range in meters
(converted internally), query rates per minute, execution time in hours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.geometry.coverage import CoverageMethod
from repro.core.senn import SennConfig
from repro.core.server import ServerAlgorithm
from repro.sim.latency import LatencyModel

__all__ = [
    "METERS_PER_MILE",
    "MovementMode",
    "ParameterSet",
    "SimulationConfig",
    "los_angeles_2x2",
    "riverside_2x2",
    "suburbia_2x2",
    "los_angeles_30x30",
    "riverside_30x30",
    "suburbia_30x30",
    "PARAMETER_SETS_2X2",
    "PARAMETER_SETS_30X30",
]

METERS_PER_MILE = 1609.344


class MovementMode(enum.Enum):
    """The two movement generator modes of Section 4.1."""

    ROAD_NETWORK = "road-network"
    FREE = "free"


@dataclass(frozen=True)
class ParameterSet:
    """One simulation environment column (Tables 3-4)."""

    name: str
    poi_number: int
    mh_number: int
    c_size: int
    m_percentage: float  # percent of hosts that move
    m_velocity: float  # mph
    lambda_query: float  # queries per minute (whole system)
    tx_range_m: float  # wireless transmission range, meters
    lambda_knn: int  # mean number of queried nearest neighbors
    t_execution_hours: float
    area_miles: float  # square side length

    def __post_init__(self) -> None:
        if self.poi_number < 1 or self.mh_number < 1:
            raise ValueError("POI and MH counts must be positive")
        if not 0.0 <= self.m_percentage <= 100.0:
            raise ValueError("m_percentage must be in [0, 100]")
        if self.m_velocity <= 0.0:
            raise ValueError("m_velocity must be positive")
        if self.lambda_query <= 0.0:
            raise ValueError("lambda_query must be positive")
        if self.tx_range_m < 0.0:
            raise ValueError("tx_range_m must be non-negative")
        if self.lambda_knn < 1:
            raise ValueError("lambda_knn must be at least 1")
        if self.t_execution_hours <= 0.0 or self.area_miles <= 0.0:
            raise ValueError("execution time and area must be positive")

    @property
    def tx_range_miles(self) -> float:
        return self.tx_range_m / METERS_PER_MILE

    @property
    def host_density_per_sq_mile(self) -> float:
        return self.mh_number / (self.area_miles * self.area_miles)

    @property
    def poi_density_per_sq_mile(self) -> float:
        return self.poi_number / (self.area_miles * self.area_miles)

    def scaled_area(self, factor: float) -> "ParameterSet":
        """Simulate a ``factor``-side-length window with preserved densities.

        Host count, POI count and the system query rate scale with the
        window *area* (``factor ** 2``); densities stay exact.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        area_ratio = factor * factor
        return replace(
            self,
            name=f"{self.name} (x{factor:g} window)",
            poi_number=max(1, round(self.poi_number * area_ratio)),
            mh_number=max(1, round(self.mh_number * area_ratio)),
            lambda_query=max(1e-6, self.lambda_query * area_ratio),
            area_miles=self.area_miles * factor,
        )


# ----------------------------------------------------------------------
# Table 3: 2 miles x 2 miles area.
# ----------------------------------------------------------------------
def los_angeles_2x2() -> ParameterSet:
    return ParameterSet("Los Angeles County", 16, 463, 10, 80.0, 30.0, 23.0, 200.0, 3, 1.0, 2.0)


def riverside_2x2() -> ParameterSet:
    return ParameterSet("Riverside County", 5, 50, 10, 80.0, 30.0, 2.5, 200.0, 3, 1.0, 2.0)


def suburbia_2x2() -> ParameterSet:
    return ParameterSet("Synthetic Suburbia", 11, 257, 10, 80.0, 30.0, 13.0, 200.0, 3, 1.0, 2.0)


# ----------------------------------------------------------------------
# Table 4: 30 miles x 30 miles area.
# ----------------------------------------------------------------------
def los_angeles_30x30() -> ParameterSet:
    return ParameterSet(
        "Los Angeles County", 4050, 121500, 20, 80.0, 30.0, 8100.0, 200.0, 5, 5.0, 30.0
    )


def riverside_30x30() -> ParameterSet:
    return ParameterSet(
        "Riverside County", 2160, 11700, 20, 80.0, 30.0, 780.0, 200.0, 5, 5.0, 30.0
    )


def suburbia_30x30() -> ParameterSet:
    return ParameterSet(
        "Synthetic Suburbia", 3105, 66600, 20, 80.0, 30.0, 4440.0, 200.0, 5, 5.0, 30.0
    )


PARAMETER_SETS_2X2 = {
    "LA": los_angeles_2x2,
    "SYN": suburbia_2x2,
    "RV": riverside_2x2,
}

PARAMETER_SETS_30X30 = {
    "LA": los_angeles_30x30,
    "SYN": suburbia_30x30,
    "RV": riverside_30x30,
}


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs."""

    parameters: ParameterSet
    movement_mode: MovementMode = MovementMode.ROAD_NETWORK
    seed: int = 0
    t_execution_s: Optional[float] = None  # overrides parameters when set
    warmup_fraction: float = 0.2
    movement_tick_s: float = 2.0
    pause_max_s: float = 60.0
    k_range: Optional[Tuple[int, int]] = None  # uniform random k per query
    coverage_method: CoverageMethod = CoverageMethod.EXACT
    polygon_sides: int = 32
    accept_uncertain: bool = False
    server_algorithm: ServerAlgorithm = ServerAlgorithm.EINN
    road_secondary_spacing: float = 0.25  # miles between streets
    snap_pois_to_roads: bool = True
    # Section-5 extension: fraction of queries issued as range queries
    # ("all POIs within range_radius_miles") instead of kNN.
    range_query_fraction: float = 0.0
    range_radius_miles: float = 0.25
    range_overfetch_miles: float = 0.25
    cache_history: int = 1  # >1: retain the last N results (extension)
    latency_model: LatencyModel = LatencyModel()
    record_trace: bool = False  # keep a full per-query event trace
    # POI placement: uniform by default; setting poi_clusters places the
    # POIs in Gaussian blobs around that many random "town centers"
    # (gas stations cluster at intersections and commercial strips).
    poi_clusters: Optional[int] = None
    poi_cluster_sigma_miles: float = 0.4
    # Route all server traffic through the query service's loopback
    # transport (encode -> decode -> engine -> encode -> decode) instead
    # of calling the in-process server directly.  Answers are identical
    # by construction; this exists so simulations exercise the exact
    # wire code path the TCP service runs.
    use_service: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.movement_tick_s <= 0.0:
            raise ValueError("movement_tick_s must be positive")
        if self.k_range is not None:
            low, high = self.k_range
            if low < 1 or high < low:
                raise ValueError("k_range must satisfy 1 <= low <= high")
        if not 0.0 <= self.range_query_fraction <= 1.0:
            raise ValueError("range_query_fraction must be in [0, 1]")
        if self.range_radius_miles <= 0.0:
            raise ValueError("range_radius_miles must be positive")
        if self.poi_clusters is not None and self.poi_clusters < 1:
            raise ValueError("poi_clusters must be at least 1 when set")
        if self.poi_cluster_sigma_miles <= 0.0:
            raise ValueError("poi_cluster_sigma_miles must be positive")

    @property
    def duration_s(self) -> float:
        if self.t_execution_s is not None:
            return self.t_execution_s
        return self.parameters.t_execution_hours * 3600.0

    @property
    def query_rate_per_s(self) -> float:
        return self.parameters.lambda_query / 60.0

    def senn_config(self) -> SennConfig:
        """The per-host SENN configuration implied by the parameter set."""
        return SennConfig(
            k=self.parameters.lambda_knn,
            transmission_range=self.parameters.tx_range_miles,
            cache_capacity=self.parameters.c_size,
            coverage_method=self.coverage_method,
            polygon_sides=self.polygon_sides,
            accept_uncertain=self.accept_uncertain,
            range_overfetch=self.range_overfetch_miles,
            cache_history=self.cache_history,
        )
