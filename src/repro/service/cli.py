"""The ``repro-serve`` console script.

Two modes::

    repro-serve --pois 5000 --port 9042          # serve until Ctrl-C
    repro-serve --selftest --clients 8           # CI smoke mode

The self-test starts the asyncio server on an ephemeral port, drives N
concurrent TCP clients issuing co-located kNN and range queries, and
verifies every answer against a reference in-process server built from
the same POIs -- the answers must match bit for bit.  It exits non-zero
on any mismatch, which is what the ``service-smoke`` CI job checks.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.service.asyncserver import (
    AsyncQueryServer,
    BackgroundServer,
    ServiceConfig,
)
from repro.service.client import ServiceClient
from repro.service.transport import TcpTransport

__all__ = ["build_pois", "main", "selftest"]


def build_pois(
    count: int, seed: int, extent: float
) -> List[Tuple[Point, str]]:
    """A seeded uniform POI set (the CLI's synthetic workload)."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, extent, count)
    ys = rng.uniform(0.0, extent, count)
    return [
        (Point(float(x), float(y)), f"poi-{index}")
        for index, (x, y) in enumerate(zip(xs, ys))
    ]


def _build_server(args: argparse.Namespace) -> SpatialDatabaseServer:
    return SpatialDatabaseServer.from_points(
        build_pois(args.pois, args.seed, args.extent),
        algorithm=ServerAlgorithm(args.algorithm),
        buffer_capacity=args.buffer_capacity,
    )


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        batch_cell_size=args.cell_size,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        request_timeout_s=args.timeout_s,
    )


def _client_worker(
    host: str,
    port: int,
    queries: int,
    k: int,
    points: Sequence[Point],
) -> List[Tuple[int, Tuple[Tuple[float, float, object, float], ...], int]]:
    """Issue ``queries`` kNN requests; return comparable answer keys."""
    client = ServiceClient(TcpTransport(host, port))
    out = []
    try:
        for index in range(queries):
            point = points[index % len(points)]
            answer = client.knn_query_detailed(point, k)
            key = tuple(
                (n.point.x, n.point.y, n.payload, n.distance)
                for n in answer.neighbors
            )
            out.append((index % len(points), key, answer.batch_size))
    finally:
        client.close()
    return out


def selftest(args: argparse.Namespace) -> int:
    """Start a server, hammer it with concurrent clients, verify."""
    pois = build_pois(args.pois, args.seed, args.extent)
    served = SpatialDatabaseServer.from_points(
        pois,
        algorithm=ServerAlgorithm(args.algorithm),
        buffer_capacity=args.buffer_capacity,
    )
    reference = SpatialDatabaseServer.from_points(
        pois,
        algorithm=ServerAlgorithm(args.algorithm),
        buffer_capacity=args.buffer_capacity,
    )
    # Co-located query points: a tight cluster inside one batching cell,
    # so concurrent clients actually exercise the shared traversals.
    rng = np.random.default_rng(args.seed + 1)
    anchor = Point(args.extent / 2.0, args.extent / 2.0)
    points = [
        anchor.translated(
            float(rng.uniform(0.0, args.cell_size / 4.0)),
            float(rng.uniform(0.0, args.cell_size / 4.0)),
        )
        for _ in range(8)
    ]
    expected = {
        index: tuple(
            (n.point.x, n.point.y, n.payload, n.distance)
            for n in reference.knn_query(point, args.knn_k)
        )
        for index, point in enumerate(points)
    }

    mismatches = 0
    total = 0
    batch_sizes: List[int] = []
    with BackgroundServer(served, _service_config(args)) as running:
        host, port = running.address
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            futures = [
                pool.submit(
                    _client_worker, host, port, args.queries, args.knn_k, points
                )
                for _ in range(args.clients)
            ]
            for future in futures:
                for point_index, key, batch_size in future.result():
                    total += 1
                    batch_sizes.append(batch_size)
                    # Bit-exactness is the whole point of the self-test:
                    # a served answer must equal the in-process answer
                    # down to the last float, not within tolerance.
                    if key != expected[point_index]:  # repro: noqa(RPR001)
                        mismatches += 1
    mean_batch = sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
    if not args.quiet:
        print(
            f"selftest: {total} queries over {args.clients} clients, "
            f"{mismatches} mismatches, mean batch size {mean_batch:.2f}, "
            f"max batch size {max(batch_sizes) if batch_sizes else 0}"
        )
    if mismatches:
        print(f"FAILED: {mismatches} answers differed from the reference")
        return 1
    return 0


def _serve(args: argparse.Namespace) -> int:
    server = _build_server(args)

    async def run() -> None:
        running = AsyncQueryServer(server, _service_config(args))
        await running.start()
        host, port = running.address
        if not args.quiet:
            print(
                f"repro-serve: {server.poi_count} POIs "
                f"({server.algorithm.value}) on {host}:{port}"
            )
        await running.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        if not args.quiet:
            print("repro-serve: interrupted, shutting down")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a spatial database over the query protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--pois", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--extent", type=float, default=10.0)
    parser.add_argument(
        "--algorithm",
        choices=[algorithm.value for algorithm in ServerAlgorithm],
        default=ServerAlgorithm.EINN.value,
    )
    parser.add_argument("--buffer-capacity", type=int, default=0)
    parser.add_argument("--cell-size", type=float, default=0.25)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=32)
    parser.add_argument("--timeout-s", type=float, default=30.0)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="start a server, drive concurrent clients, verify answers",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--knn-k", type=int, default=5)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-serve``."""
    args = build_parser().parse_args(argv)
    if args.selftest:
        return selftest(args)
    return _serve(args)


if __name__ == "__main__":
    sys.exit(main())
