"""Query batching: merge co-located kNN requests into one traversal.

Concurrent mobile hosts cluster spatially (a traffic jam is exactly the
situation where many nearby clients query at once), so the service
groups in-flight kNN requests by the cell of a uniform grid and answers
each group with a *single* shared best-first traversal instead of one
R*-tree descent per client.

The shared traversal runs incremental NN from the centroid ``c`` of the
group's query points.  For a client at ``q_i`` whose current k-th
candidate distance is ``r_i``, the triangle inequality gives
``d(q_i, p) >= d(c, p) - d(c, q_i)``: once the stream distance passes
``d(c, q_i) + r_i`` no later POI can enter client ``i``'s result, so the
client retires.  The stream stops when every client has retired.  Each
client's answer is the exact global top-k by ``(distance, poi_tie_key)``
merged with its ``known_certain`` partial result -- bit-identical to
what :meth:`~repro.core.server.SpatialDatabaseServer.knn_query_detailed`
returns for the same request (the loopback difftest enforces this).

Page accounting follows the amortization story of the issue: R*-tree
node reads of the shared traversal are split evenly across the group
(remainder to the earliest arrivals), while shipped object records stay
exact per client -- EINN semantics, a client is never billed for a
record it already holds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point, centroid
from repro.index.knn import (
    NeighborResult,
    TieKey,
    incremental_nearest,
    poi_tie_key,
)
from repro.index.pagestats import AccessBreakdown
from repro.core.backend import QueryAnswer
from repro.core.server import SpatialDatabaseServer
from repro.obs import DEFAULT_COUNT_BUCKETS, OBS
from repro.service.protocol import KnnRequest

__all__ = ["BatchExecutor"]

#: Relative slack on the retirement bound: ``d(c, q_i) + r_i`` is exact
#: in real arithmetic but each term carries float rounding, so the
#: traversal reads marginally past the bound rather than risk dropping a
#: boundary POI (extra candidates can never displace true top-k entries,
#: so the slack costs pages, not correctness).
_RETIRE_EPS = 1e-9


class _ClientState:
    """Per-request bookkeeping inside one shared traversal."""

    __slots__ = ("request", "offset", "best", "known_keys", "shipped", "done")

    def __init__(self, request: KnnRequest, representative: Point) -> None:
        self.request = request
        self.offset = representative.distance_to(request.query)
        # Ascending (distance, tie_key, neighbor); seeded with the
        # client's certified partial result exactly like EINN seeds its
        # result list, trimmed to k by the same order.
        self.best: List[Tuple[float, TieKey, NeighborResult]] = sorted(
            (
                (item.distance, poi_tie_key(item.payload), item)
                for item in request.known_certain
            ),
            key=lambda entry: (entry[0], entry[1]),
        )[: request.k]
        self.known_keys: Set[Tuple[float, float, object]] = {
            _poi_key(item.point, item.payload) for item in request.known_certain
        }
        self.shipped = 0
        self.done = False

    def cutoff(self) -> float:
        """Largest admissible distance for this client right now."""
        radius = self.request.bounds.upper
        if len(self.best) >= self.request.k:
            radius = min(radius, self.best[self.request.k - 1][0])
        return radius

    def retire_bound(self) -> float:
        """Stream distance beyond which this client cannot improve."""
        bound = self.offset + self.cutoff()
        if math.isinf(bound):
            return bound
        return bound + _RETIRE_EPS * (1.0 + bound)

    def offer(self, neighbor: NeighborResult) -> None:
        """Consider one streamed POI for this client's result."""
        distance = self.request.query.distance_to(neighbor.point)
        # The upper bound caps the k-th *distance*; ties at the bound
        # are admissible regardless of tie key (EINN's kth_cut).
        if distance > self.request.bounds.upper:
            return
        if _poi_key(neighbor.point, neighbor.payload) in self.known_keys:
            return
        tie = poi_tie_key(neighbor.payload)
        key = (distance, tie)
        best = self.best
        if len(best) >= self.request.k and key >= (
            best[self.request.k - 1][0],
            best[self.request.k - 1][1],
        ):
            return
        index = len(best)
        while index > 0 and (best[index - 1][0], best[index - 1][1]) > key:
            index -= 1
        best.insert(
            index,
            (distance, tie, NeighborResult(neighbor.point, neighbor.payload, distance)),
        )
        del best[self.request.k :]

    def neighbors(self) -> List[NeighborResult]:
        """The final answer: global top-k merged with ``known_certain``."""
        return [entry[2] for entry in self.best]


class BatchExecutor:
    """Executes waves of kNN requests, merging co-located ones.

    ``cell_size`` controls what counts as co-located: requests whose
    query points fall in the same ``cell_size`` x ``cell_size`` grid
    cell share one traversal.  A group of one simply delegates to the
    server's own :meth:`knn_query_detailed`, so an idle service is
    byte-for-byte the in-process path.
    """

    def __init__(
        self, server: SpatialDatabaseServer, cell_size: float = 0.25
    ) -> None:
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self._server = server
        self.cell_size = cell_size

    def execute(self, requests: Sequence[KnnRequest]) -> List[QueryAnswer]:
        """Answer every request; answers align with ``requests`` by index.

        Requests are grouped by grid cell; groups run in deterministic
        (cell-sorted) order so page-access history is reproducible for a
        given wave regardless of arrival interleaving.
        """
        answers: List[Optional[QueryAnswer]] = [None] * len(requests)
        groups: Dict[Tuple[int, int], List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self._cell_of(request.query), []).append(index)
        for cell in sorted(groups):
            members = groups[cell]
            if OBS.enabled:
                OBS.registry.histogram(
                    "service.batch_size", boundaries=DEFAULT_COUNT_BUCKETS
                ).observe(float(len(members)))
            if len(members) == 1:
                request = requests[members[0]]
                answers[members[0]] = self._server.knn_query_detailed(
                    request.query,
                    request.k,
                    request.bounds,
                    request.known_certain,
                )
            else:
                shared = self._execute_shared(
                    # One member list per batch group; the shared EINN
                    # traversal it enables amortizes far more page reads
                    # than the list costs.
                    [requests[i] for i in members]  # repro: hot-alloc(per-batch member list)
                )
                for member, answer in zip(members, shared):
                    answers[member] = answer
        return [answer for answer in answers if answer is not None]

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            math.floor(point.x / self.cell_size),
            math.floor(point.y / self.cell_size),
        )

    def _execute_shared(
        self, requests: Sequence[KnnRequest]
    ) -> List[QueryAnswer]:
        """One traversal, many clients (the amortization core)."""
        server = self._server
        representative = _representative(requests)
        clients = [
            _ClientState(request, representative) for request in requests
        ]
        server.counter.start_query()
        stream = incremental_nearest(server.tree, representative, server.counter)
        active = len(clients)
        for neighbor in stream:
            for client in clients:
                if client.done:
                    continue
                if neighbor.distance > client.retire_bound():
                    client.done = True
                    active -= 1
                    continue
                client.offer(neighbor)
            if active == 0:
                stream.close()
                break
        self._record_shipped(clients)
        breakdown = server.counter.finish_query()
        server.queries_served += len(clients)
        if OBS.enabled:
            OBS.registry.counter("service.batched_queries").inc(len(clients))
            OBS.registry.counter("service.shared_traversals").inc()
        return _amortize(clients, breakdown)

    def _record_shipped(self, clients: Sequence[_ClientState]) -> None:
        """Bill one object record per shipped result, per client.

        Mirrors the server's EINN accounting: records the client already
        certified (``known_certain``) are not re-shipped.
        """
        counter = self._server.counter
        shipped = 0
        skipped = 0
        for client in clients:
            for neighbor in client.neighbors():
                key = _poi_key(neighbor.point, neighbor.payload)
                if key in client.known_keys:
                    skipped += 1
                    continue
                counter.record_object(key)
                client.shipped += 1
                shipped += 1
        if OBS.enabled:
            OBS.registry.counter("server.objects", outcome="shipped").inc(shipped)
            OBS.registry.counter("server.objects", outcome="skipped").inc(skipped)


def _representative(requests: Sequence[KnnRequest]) -> Point:
    """The shared traversal's origin: the centroid of the query points."""
    return centroid(request.query for request in requests)


def _amortize(
    clients: Sequence[_ClientState], breakdown: AccessBreakdown
) -> List[QueryAnswer]:
    """Split the batch breakdown into per-client amortized shares.

    Node reads (index + leaf) and buffer traffic divide evenly, with the
    remainder going to the earliest clients in arrival order; the
    ``data_records`` counted for the whole batch are re-attributed
    exactly (each client shipped its own records).
    """
    n = len(clients)
    index_shares = _split_even(breakdown.index_nodes, n)
    leaf_shares = _split_even(breakdown.leaf_nodes, n)
    hit_shares = _split_even(breakdown.buffer_hits, n)
    miss_shares = _split_even(breakdown.buffer_misses, n)
    entry_shares = _split_even(breakdown.entries_scanned, n)
    answers: List[QueryAnswer] = []
    for position, client in enumerate(clients):
        share = AccessBreakdown(
            total=index_shares[position]
            + leaf_shares[position]
            + client.shipped,
            index_nodes=index_shares[position],
            leaf_nodes=leaf_shares[position],
            data_records=client.shipped,
            buffer_hits=hit_shares[position],
            buffer_misses=miss_shares[position],
            entries_scanned=entry_shares[position],
        )
        answers.append(QueryAnswer(client.neighbors(), share, batch_size=n))
    return answers


def _split_even(count: int, parts: int) -> List[int]:
    base, remainder = divmod(count, parts)
    return [base + (1 if position < remainder else 0) for position in range(parts)]


def _poi_key(point: Point, payload: object) -> Tuple[float, float, object]:
    """Identity key for POI dedup (same semantics as EINN's result key)."""
    return (point.x, point.y, _hashable(payload))


def _hashable(payload: object) -> object:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
