"""The service client: a :class:`SpatialBackend` that speaks the wire.

``ServiceClient`` turns backend method calls into protocol frames and
replies back into :class:`~repro.core.backend.QueryAnswer` objects.
Because it satisfies the same :class:`~repro.core.backend.SpatialBackend`
protocol as the in-process server, every consumer -- ``senn_query``,
``snnn_query``, the simulator, the difftest oracles -- runs unchanged
against a served backend; only the ``server=`` argument differs.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Type, TypeVar

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.core.backend import QueryAnswer
from repro.service.protocol import (
    Answer,
    ErrorCode,
    ErrorReply,
    KnnRequest,
    Message,
    ProtocolError,
    RangeRequest,
    StreamClose,
    StreamHandle,
    StreamItems,
    StreamOpen,
    StreamPull,
    WindowRequest,
    decode_message,
    encode_message,
)
from repro.service.transport import QueryTransport

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered with an :class:`ErrorReply`."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(f"[{code.name}] {message}")
        self.code = code


class ServiceClient:
    """A remote spatial backend reached through a transport.

    ``stream_chunk`` sets how many neighbors each incremental-stream
    pull requests (the server may cap it further).
    """

    def __init__(
        self, transport: QueryTransport, stream_chunk: int = 32
    ) -> None:
        if stream_chunk < 1:
            raise ValueError("stream_chunk must be at least 1")
        self._transport = transport
        self._ids = itertools.count(1)
        self.stream_chunk = stream_chunk

    # ------------------------------------------------------------------
    # SpatialBackend protocol
    # ------------------------------------------------------------------
    def knn_query_detailed(
        self,
        query: Point,
        k: int,
        bounds: PruningBounds = PruningBounds(),
        known_certain: Sequence[NeighborResult] = (),
    ) -> QueryAnswer:
        """kNN over the wire, with bounds and the certified partial."""
        reply = self._roundtrip(
            KnnRequest(
                next(self._ids), query, k, bounds, tuple(known_certain)
            )
        )
        return _to_query_answer(_expect(reply, Answer))

    def knn_query(
        self,
        query: Point,
        k: int,
        bounds: PruningBounds = PruningBounds(),
        known_certain: Sequence[NeighborResult] = (),
    ) -> List[NeighborResult]:
        """Neighbors-only convenience over :meth:`knn_query_detailed`."""
        return self.knn_query_detailed(query, k, bounds, known_certain).neighbors

    def range_query_detailed(self, center: Point, radius: float) -> QueryAnswer:
        """Range query over the wire."""
        reply = self._roundtrip(RangeRequest(next(self._ids), center, radius))
        return _to_query_answer(_expect(reply, Answer))

    def range_query(self, center: Point, radius: float) -> List[NeighborResult]:
        """Neighbors-only convenience over :meth:`range_query_detailed`."""
        return self.range_query_detailed(center, radius).neighbors

    def window_query_detailed(self, window: BoundingBox) -> QueryAnswer:
        """Window query over the wire."""
        reply = self._roundtrip(WindowRequest(next(self._ids), window))
        return _to_query_answer(_expect(reply, Answer))

    def incremental_query(
        self, query: Point, meter: bool = True
    ) -> Iterator[NeighborResult]:
        """Lazy neighbor stream over the wire.

        The server always meters streams onto a private sub-counter
        (``meter`` exists for protocol compatibility; a served stream
        cannot opt out of server-side accounting).  Closing the
        generator closes the remote stream, folding its pages into the
        server's history.
        """
        del meter  # server-side accounting is not optional over the wire
        handle = _expect(
            self._roundtrip(StreamOpen(next(self._ids), query)), StreamHandle
        )
        return self._stream_items(handle.stream_id)

    def _stream_items(self, stream_id: int) -> Iterator[NeighborResult]:
        try:
            while True:
                items = _expect(
                    self._roundtrip(
                        StreamPull(
                            next(self._ids), stream_id, self.stream_chunk
                        )
                    ),
                    StreamItems,
                )
                yield from items.items
                if items.exhausted:
                    break
        finally:
            try:
                self._roundtrip(StreamClose(next(self._ids), stream_id))
            except (ServiceError, ProtocolError, OSError):
                # Closing a torn-down stream is best-effort; the server
                # folds orphaned streams when the session closes.
                pass

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _roundtrip(self, request: Message) -> Message:
        reply = decode_message(self._transport.request(encode_message(request)))
        if isinstance(reply, ErrorReply):
            raise ServiceError(reply.code, reply.message)
        expected_id = getattr(request, "request_id", 0)
        actual_id = getattr(reply, "request_id", 0)
        if actual_id != expected_id:
            raise ProtocolError(
                f"reply for request {actual_id}, expected {expected_id}"
            )
        return reply

    def close(self) -> None:
        """Close the underlying transport."""
        self._transport.close()


def _to_query_answer(answer: Answer) -> QueryAnswer:
    return QueryAnswer(
        list(answer.neighbors), answer.breakdown, answer.batch_size
    )


_M = TypeVar("_M", Answer, StreamHandle, StreamItems)


def _expect(reply: Message, expected: Type[_M]) -> _M:
    if not isinstance(reply, expected):
        raise ProtocolError(
            f"expected {expected.__name__}, got {type(reply).__name__}"
        )
    return reply
