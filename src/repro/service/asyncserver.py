"""The asyncio TCP query server.

One event loop, one :class:`~repro.service.engine.QueryService`, many
connections.  kNN requests do not execute inline: they are enqueued to
the *batching dispatcher*, which collects whatever is in flight (across
all connections, waiting up to ``batch_window_s`` for stragglers) and
hands the wave to the :class:`~repro.service.batching.BatchExecutor` --
this is where co-located concurrent clients get merged into shared
traversals.  Everything else (range/window queries, stream operations)
is cheap and session-stateful, so it runs inline on the connection task.

Flow control, per the issue's deployment knobs:

* **per-connection backpressure** -- at most ``max_inflight`` queued
  kNN requests per connection; the reader coroutine stops reading from
  the socket until replies drain, so a flooding client throttles itself
  (TCP does the rest) without starving other connections;
* **request timeouts** -- a queued request older than
  ``request_timeout_s`` is answered with a ``TIMEOUT`` error instead of
  being executed (counted on ``service.timeouts``);
* **queue depth** -- the global dispatcher queue depth is exported as
  the ``service.queue_depth`` gauge.

Malformed framing (bad magic, unknown version, oversized declared
payload, undecodable message) is unrecoverable on a byte stream: the
server replies with a ``MALFORMED``/``OVERSIZED`` error and closes the
connection.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.analysis.runtime import named_async_lock
from repro.core.server import SpatialDatabaseServer
from repro.obs import DEFAULT_TIME_BUCKETS_S, OBS
from repro.service.engine import QueryService
from repro.service.protocol import (
    HEADER_SIZE,
    ErrorCode,
    ErrorReply,
    KnnRequest,
    Message,
    ProtocolError,
    decode_message,
    encode_message,
    parse_header,
)

__all__ = ["AsyncQueryServer", "BackgroundServer", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of the asyncio server (see ``docs/service.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from ``address``
    batch_cell_size: float = 0.25
    batch_window_s: float = 0.002
    max_batch: int = 64
    max_inflight: int = 32
    queue_capacity: int = 1024
    request_timeout_s: float = 30.0
    stream_chunk: int = 128

    def __post_init__(self) -> None:
        if self.batch_cell_size <= 0.0:
            raise ValueError("batch_cell_size must be positive")
        if self.batch_window_s < 0.0:
            raise ValueError("batch_window_s must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.request_timeout_s <= 0.0:
            raise ValueError("request_timeout_s must be positive")


class _Pending:
    """One enqueued kNN request plus everything needed to answer it."""

    __slots__ = ("request", "enqueued_at", "respond", "release")

    def __init__(
        self,
        request: KnnRequest,
        enqueued_at: float,
        respond: Callable[[Message], "asyncio.Future[None]"],
        release: Callable[[], None],
    ) -> None:
        self.request = request
        self.enqueued_at = enqueued_at
        self.respond = respond
        self.release = release


class AsyncQueryServer:
    """Serve a :class:`SpatialDatabaseServer` over TCP."""

    def __init__(
        self,
        server: SpatialDatabaseServer,
        config: ServiceConfig = ServiceConfig(),
    ) -> None:
        self.config = config
        self.service = QueryService(
            server,
            batch_cell_size=config.batch_cell_size,
            stream_chunk=config.stream_chunk,
        )
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=config.queue_capacity
        )
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._connections: Set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self._tcp = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves an ephemeral port)."""
        sockets = getattr(self._tcp, "sockets", None)
        if not sockets:
            raise RuntimeError("server is not started")
        host, port = sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode).

        Raises ``RuntimeError`` when :meth:`start` has not run: the old
        auto-start fallback hid missing-lifecycle bugs in callers, and
        its ``if``/``assert`` pair was dead code on every correct path.
        """
        if self._tcp is None:
            raise RuntimeError("start() not called")
        await self._tcp.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel the dispatcher, close connections."""
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for writer in list(self._connections):
            writer.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self.service.session()
        send_lock = named_async_lock("AsyncQueryServer.send_lock")
        inflight = asyncio.Semaphore(self.config.max_inflight)
        loop = asyncio.get_running_loop()
        self._connections.add(writer)
        if OBS.enabled:
            OBS.registry.counter("service.connections", event="opened").inc()

        async def send(message: Message) -> None:
            frame = encode_message(message)
            try:
                async with send_lock:
                    writer.write(frame)
                    await writer.drain()
            except (ConnectionError, OSError):
                # The client went away; the reader loop will see EOF.
                pass

        def respond(message: Message) -> "asyncio.Future[None]":
            return asyncio.ensure_future(send(message))

        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER_SIZE)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    _, length = parse_header(header)
                    payload = await reader.readexactly(length)
                    message = decode_message(header + payload)
                except ProtocolError as exc:
                    if OBS.enabled:
                        OBS.registry.counter(
                            "service.errors", code=exc.code.name
                        ).inc()
                    await send(ErrorReply(0, exc.code, str(exc)))
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if OBS.enabled:
                    OBS.registry.counter(
                        "service.requests", type=type(message).__name__
                    ).inc()
                if isinstance(message, KnnRequest):
                    # Backpressure: stop reading this socket until the
                    # connection's in-flight window has room again.
                    await inflight.acquire()
                    pending = _Pending(
                        message,
                        loop.time(),
                        respond,
                        inflight.release,
                    )
                    await self._queue.put(pending)
                    self._note_queue_depth()
                else:
                    started = loop.time()
                    reply = session.handle(message)
                    await send(reply)
                    self._note_latency(loop.time() - started)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            session.close()
            self._connections.discard(writer)
            if OBS.enabled:
                OBS.registry.counter(
                    "service.connections", event="closed"
                ).inc()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # batching dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            while len(batch) < self.config.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            self._note_queue_depth()
            await self._execute_batch(batch, loop.time())

    async def _execute_batch(
        self, batch: List[_Pending], now: float
    ) -> None:
        live: List[_Pending] = []
        for item in batch:
            if now - item.enqueued_at > self.config.request_timeout_s:
                if OBS.enabled:
                    OBS.registry.counter("service.timeouts").inc()
                self._finish(
                    item,
                    ErrorReply(
                        item.request.request_id,
                        ErrorCode.TIMEOUT,
                        "request timed out in the service queue",
                    ),
                )
            else:
                live.append(item)
        if not live:
            return
        try:
            answers = self.service.execute_knn_batch(
                [item.request for item in live]
            )
        except (ProtocolError, ValueError, ArithmeticError) as exc:
            for item in live:
                self._finish(
                    item,
                    ErrorReply(
                        item.request.request_id,
                        ErrorCode.INTERNAL,
                        str(exc),
                    ),
                )
            return
        loop = asyncio.get_running_loop()
        for item, answer in zip(live, answers):
            self._note_latency(loop.time() - item.enqueued_at)
            self._finish(item, answer)

    def _finish(self, item: _Pending, reply: Message) -> None:
        future = item.respond(reply)
        future.add_done_callback(lambda _f: item.release())

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def _note_queue_depth(self) -> None:
        if OBS.enabled:
            OBS.registry.gauge("service.queue_depth").set(
                float(self._queue.qsize())
            )

    def _note_latency(self, seconds: float) -> None:
        if OBS.enabled:
            OBS.registry.histogram(
                "service.request_latency_s",
                boundaries=DEFAULT_TIME_BUCKETS_S,
            ).observe(seconds)


class BackgroundServer:
    """Run an :class:`AsyncQueryServer` on a daemon thread.

    Context manager for synchronous callers (tests, the ``repro-serve``
    self-test, benchmarks)::

        with BackgroundServer(server) as running:
            transport = TcpTransport(*running.address)

    The event loop lives entirely on the background thread; ``__exit__``
    signals it to stop and joins the thread.
    """

    def __init__(
        self,
        server: SpatialDatabaseServer,
        config: ServiceConfig = ServiceConfig(),
    ) -> None:
        self._server = server
        self._config = config
        self._ready = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` once the server is up."""
        if self._address is None:
            raise RuntimeError("server is not running")
        return self._address

    def start(self) -> "BackgroundServer":
        """Start the thread and block until the socket is bound."""
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self) -> None:
        """Signal the loop to shut down and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # The fields below are written on the service thread strictly before
    # ``self._ready.set()`` and read by the caller thread strictly after
    # ``self._ready.wait()``: the Event provides the happens-before edge,
    # hence the ``guarded-by(handshake)`` annotations.
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._error = exc  # repro: guarded-by(handshake)
            self._ready.set()

    async def _main(self) -> None:
        running = AsyncQueryServer(self._server, self._config)
        self._loop = asyncio.get_running_loop()  # repro: guarded-by(handshake)
        self._stop = asyncio.Event()  # repro: guarded-by(handshake)
        await running.start()
        self._address = running.address  # repro: guarded-by(handshake)
        self._ready.set()
        await self._stop.wait()
        await running.stop()
