"""Transports: how encoded frames travel between client and service.

Two implementations of the same :class:`QueryTransport` protocol:

* :class:`LoopbackTransport` -- in-process.  Frames still pass through
  the full encode -> decode -> execute -> encode -> decode pipeline, so
  every code path the TCP transport exercises (validation included) is
  exercised here too; the only thing missing is the socket.  This is
  what the simulator, the difftest oracles and ``repro-bench`` use.
* :class:`TcpTransport` -- a blocking TCP client for the asyncio server,
  with a connect-retry loop (counted via ``service.client_retries``) and
  a per-request timeout.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.obs import OBS
from repro.service.protocol import (
    HEADER_SIZE,
    ErrorCode,
    ProtocolError,
    decode_message,
    encode_message,
    parse_header,
)

if TYPE_CHECKING:
    from repro.service.engine import QueryService, ServiceSession

__all__ = ["LoopbackTransport", "QueryTransport", "TcpTransport"]


@runtime_checkable
class QueryTransport(Protocol):
    """One request frame in, one reply frame out."""

    def request(self, frame: bytes) -> bytes:
        """Send a complete frame; block until the reply frame arrives."""
        ...

    def close(self) -> None:
        """Release the transport's resources."""
        ...


class LoopbackTransport:
    """In-process transport driving a private :class:`ServiceSession`."""

    def __init__(self, service: "QueryService") -> None:
        self._session: "ServiceSession" = service.session()

    def request(self, frame: bytes) -> bytes:
        """Decode, execute and re-encode -- the wire path minus the wire."""
        message = decode_message(frame)
        reply = self._session.handle(message)
        return encode_message(reply)

    def close(self) -> None:
        """Close the underlying session (folds open streams)."""
        self._session.close()


class TcpTransport:
    """Blocking TCP client transport for :class:`AsyncQueryServer`.

    ``timeout_s`` bounds each send/receive; ``connect_retries`` retries
    the initial connection (the server may still be binding when a
    client worker starts), sleeping ``retry_delay_s`` between attempts.
    Thread-safe: a lock serializes request/reply exchanges, so one
    transport may back several workers (they just will not pipeline).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        connect_retries: int = 3,
        retry_delay_s: float = 0.05,
    ) -> None:
        self._lock = threading.Lock()
        last_error: Exception = OSError("no connection attempt made")
        for attempt in range(max(1, connect_retries)):
            if attempt > 0:
                if OBS.enabled:
                    OBS.registry.counter("service.client_retries").inc()
                time.sleep(retry_delay_s)
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout_s
                )
                break
            except OSError as exc:
                last_error = exc
        else:
            raise last_error
        self._sock.settimeout(timeout_s)

    def request(self, frame: bytes) -> bytes:
        """One request/reply exchange over the socket."""
        with self._lock:
            self._sock.sendall(frame)
            header = _recv_exactly(self._sock, HEADER_SIZE)
            _, length = parse_header(header)
            return header + _recv_exactly(self._sock, length)

    def close(self) -> None:
        """Shut the connection down."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _recv_exactly(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise on early EOF."""
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                "connection closed mid-frame", ErrorCode.MALFORMED
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
