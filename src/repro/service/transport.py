"""Transports: how encoded frames travel between client and service.

Two implementations of the same :class:`QueryTransport` protocol:

* :class:`LoopbackTransport` -- in-process.  Frames still pass through
  the full encode -> decode -> execute -> encode -> decode pipeline, so
  every code path the TCP transport exercises (validation included) is
  exercised here too; the only thing missing is the socket.  This is
  what the simulator, the difftest oracles and ``repro-bench`` use.
* :class:`TcpTransport` -- a blocking TCP client for the asyncio server,
  with a connect-retry loop (counted via ``service.client_retries``), a
  per-request timeout, and reconnect-on-whole-frame-failure semantics
  (counted via ``service.client_resends``).
"""

from __future__ import annotations

import socket
import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.analysis.runtime import named_lock
from repro.obs import OBS
from repro.service.protocol import (
    HEADER_SIZE,
    ErrorCode,
    ProtocolError,
    decode_message,
    encode_message,
    parse_header,
)

if TYPE_CHECKING:
    from repro.service.engine import QueryService, ServiceSession

__all__ = ["LoopbackTransport", "QueryTransport", "TcpTransport"]


@runtime_checkable
class QueryTransport(Protocol):
    """One request frame in, one reply frame out."""

    def request(self, frame: bytes) -> bytes:
        """Send a complete frame; block until the reply frame arrives."""
        ...

    def close(self) -> None:
        """Release the transport's resources."""
        ...


class LoopbackTransport:
    """In-process transport driving a private :class:`ServiceSession`."""

    def __init__(self, service: "QueryService") -> None:
        self._session: "ServiceSession" = service.session()

    def request(self, frame: bytes) -> bytes:
        """Decode, execute and re-encode -- the wire path minus the wire."""
        message = decode_message(frame)
        reply = self._session.handle(message)
        return encode_message(reply)

    def close(self) -> None:
        """Close the underlying session (folds open streams)."""
        self._session.close()


class _WholeFrameFailure(OSError):
    """A send failed before any byte of the frame reached the socket."""


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    """Send a whole frame, distinguishing zero-byte failure from partial.

    ``sendall`` cannot tell its caller whether any bytes left before an
    error, and the resend decision hinges on exactly that: resending
    after a *partial* send could deliver a duplicated frame once the
    server reassembles both halves.  So the frame is sent manually and
    an error with zero bytes out is re-raised as
    :class:`_WholeFrameFailure`.
    """
    view = memoryview(frame)
    offset = 0
    while offset < len(view):
        try:
            sent = sock.send(view[offset:])
        except OSError as exc:
            if offset == 0:
                raise _WholeFrameFailure(*exc.args) from exc
            raise
        if sent == 0:
            raise ProtocolError(
                "connection closed mid-frame", ErrorCode.MALFORMED
            )
        offset += sent


class TcpTransport:
    """Blocking TCP client transport for :class:`AsyncQueryServer`.

    ``timeout_s`` bounds each send/receive; ``connect_retries`` retries
    the initial connection (the server may still be binding when a
    client worker starts), sleeping ``retry_delay_s`` between attempts.
    Thread-safe: a lock serializes request/reply exchanges, so one
    transport may back several workers (they just will not pipeline).

    Retry semantics: when a send fails before *any* byte of the frame
    reached the wire (typically the server closed the idle connection),
    the transport reconnects and resends once -- the server cannot have
    seen a partial frame, so the resend cannot duplicate a request.  A
    failure mid-frame is raised to the caller instead: the server may
    hold the sent prefix, and resending the whole frame could execute
    the request twice.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        connect_retries: int = 3,
        retry_delay_s: float = 0.05,
    ) -> None:
        self._lock = named_lock("TcpTransport._lock")
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._connect_retries = connect_retries
        self._retry_delay_s = retry_delay_s
        self._sock = self._connect()  # repro: guarded-by(self._lock)

    def _connect(self) -> socket.socket:
        """Dial the server, retrying while it may still be binding."""
        last_error: Exception = OSError("no connection attempt made")
        for attempt in range(max(1, self._connect_retries)):
            if attempt > 0:
                if OBS.enabled:
                    OBS.registry.counter("service.client_retries").inc()
                time.sleep(self._retry_delay_s)
            try:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout_s
                )
            except OSError as exc:
                last_error = exc
            else:
                sock.settimeout(self._timeout_s)
                return sock
        raise last_error

    def request(self, frame: bytes) -> bytes:
        """One request/reply exchange over the socket."""
        with self._lock:
            try:
                _send_frame(self._sock, frame)
            except _WholeFrameFailure:
                # Nothing reached the wire: reconnect and resend once.
                self._close_socket()
                self._sock = self._connect()
                if OBS.enabled:
                    OBS.registry.counter("service.client_resends").inc()
                _send_frame(self._sock, frame)
            header = _recv_exactly(self._sock, HEADER_SIZE)
            _, length = parse_header(header)
            return header + _recv_exactly(self._sock, length)

    def _close_socket(self) -> None:
        """Best-effort shutdown + close of the current socket."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def close(self) -> None:
        """Shut the connection down."""
        with self._lock:
            self._close_socket()


def _recv_exactly(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise on early EOF."""
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                "connection closed mid-frame", ErrorCode.MALFORMED
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
