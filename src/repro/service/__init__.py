"""``repro.service`` -- the query service: wire protocol, batching,
asyncio server and client.

The in-process :class:`~repro.core.server.SpatialDatabaseServer` answers
queries by direct method call.  This package puts the same engine behind
a compact, versioned request/response protocol so that *remote* mobile
hosts -- and, more importantly for the reproduction, concurrent ones --
can share a single server:

* :mod:`repro.service.protocol` -- binary framing and message codecs,
  including the Section 3.3 :class:`~repro.index.knn.PruningBounds` and
  ``known_certain`` partial results on the wire;
* :mod:`repro.service.batching` -- merges co-located concurrent kNN
  requests into one shared best-first traversal, amortizing R*-tree
  node reads across clients;
* :mod:`repro.service.engine` -- transport-independent request
  execution and per-session incremental streams;
* :mod:`repro.service.transport` -- the :class:`QueryTransport`
  protocol with in-process loopback and TCP implementations;
* :mod:`repro.service.client` -- :class:`ServiceClient`, a
  :class:`~repro.core.backend.SpatialBackend` speaking the protocol, so
  SENN/SNNN pipelines run unchanged against a served backend;
* :mod:`repro.service.asyncserver` -- the asyncio TCP server with
  per-connection backpressure, request timeouts and the batching
  dispatcher;
* :mod:`repro.service.cli` -- the ``repro-serve`` console script.
"""

from repro.service.asyncserver import (
    AsyncQueryServer,
    BackgroundServer,
    ServiceConfig,
)
from repro.service.batching import BatchExecutor
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import QueryService, ServiceSession
from repro.service.transport import (
    LoopbackTransport,
    QueryTransport,
    TcpTransport,
)

__all__ = [
    "AsyncQueryServer",
    "BackgroundServer",
    "BatchExecutor",
    "LoopbackTransport",
    "QueryService",
    "QueryTransport",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceSession",
    "TcpTransport",
]
