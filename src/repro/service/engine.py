"""Transport-independent execution of protocol requests.

:class:`QueryService` wraps one
:class:`~repro.core.server.SpatialDatabaseServer` and turns decoded
protocol messages into protocol replies.  It is deliberately synchronous
-- the asyncio server and the in-process loopback transport drive the
*same* object, which is what makes the loopback difftest meaningful: a
query answered over TCP and one answered in-process execute identical
code from the first decoded byte onward.

Streams are scoped to a :class:`ServiceSession` (one per connection /
loopback client): each open incremental stream meters onto its own
sub-counter and folds into the server's history exactly once, when the
stream is exhausted or closed -- the same discipline as
:meth:`SpatialDatabaseServer.incremental_query`, but with the breakdown
kept so it can be shipped back in :class:`~repro.service.protocol.StreamEnd`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence

from repro.geometry.point import Point
from repro.index.knn import NeighborResult, incremental_nearest
from repro.index.pagestats import AccessBreakdown
from repro.core.server import SpatialDatabaseServer
from repro.obs import OBS
from repro.service.batching import BatchExecutor
from repro.service.protocol import (
    Answer,
    ErrorCode,
    ErrorReply,
    KnnRequest,
    Message,
    ProtocolError,
    RangeRequest,
    StreamClose,
    StreamEnd,
    StreamHandle,
    StreamItems,
    StreamOpen,
    StreamPull,
    WindowRequest,
)

__all__ = ["QueryService", "ServiceSession"]


class _Stream:
    """One open incremental stream with private page accounting."""

    def __init__(self, server: SpatialDatabaseServer, query: Point) -> None:
        self._server = server
        self._sub = server.counter.subcounter()
        self._sub.start_query()
        self._iterator: Iterator[NeighborResult] = incremental_nearest(
            server.tree, query, self._sub
        )
        self.exhausted = False
        self._breakdown: Optional[AccessBreakdown] = None

    def pull(self, max_items: int) -> List[NeighborResult]:
        """Next ``max_items`` neighbors (fewer only when exhausted)."""
        items: List[NeighborResult] = []
        while len(items) < max_items:
            try:
                items.append(next(self._iterator))
            except StopIteration:
                self.exhausted = True
                break
        return items

    def finalize(self) -> AccessBreakdown:
        """Fold this stream's accesses into server history (idempotent)."""
        if self._breakdown is None:
            close = getattr(self._iterator, "close", None)
            if close is not None:
                close()
            self._breakdown = self._sub.finish_query()
            self._server.counter.absorb(self._breakdown)
        return self._breakdown


class QueryService:
    """The serving engine: batching executor plus session factory.

    ``batch_cell_size`` is forwarded to the :class:`BatchExecutor`;
    ``stream_chunk`` caps how many neighbors one :class:`StreamPull`
    may return regardless of what the client asked for.
    """

    def __init__(
        self,
        server: SpatialDatabaseServer,
        batch_cell_size: float = 0.25,
        stream_chunk: int = 128,
    ) -> None:
        if stream_chunk < 1:
            raise ValueError("stream_chunk must be at least 1")
        self.server = server
        self.executor = BatchExecutor(server, cell_size=batch_cell_size)
        self.stream_chunk = stream_chunk

    def session(self) -> "ServiceSession":
        """A new session (one per connection or loopback client)."""
        return ServiceSession(self)

    def execute_knn_batch(
        self, requests: Sequence[KnnRequest]
    ) -> List[Answer]:
        """Answer a wave of kNN requests, merging co-located ones."""
        answers = self.executor.execute(requests)
        return [
            Answer(
                request.request_id,
                tuple(answer.neighbors),
                answer.pages,
                answer.batch_size,
            )
            for request, answer in zip(requests, answers)
        ]


class ServiceSession:
    """Per-connection state: open streams and their ids.

    :meth:`handle` never raises for request-level problems -- it returns
    an :class:`ErrorReply` so the transport can always send *something*
    back.  Only a non-request message (a client decoding bug) raises.
    """

    def __init__(self, service: QueryService) -> None:
        self._service = service
        self._streams: Dict[int, _Stream] = {}
        self._ids = itertools.count(1)

    @property
    def open_streams(self) -> int:
        """Number of streams this session has open."""
        return len(self._streams)

    def handle(self, message: Message) -> Message:
        """Execute one request and produce its reply."""
        try:
            if isinstance(message, KnnRequest):
                return self._service.execute_knn_batch([message])[0]
            if isinstance(message, RangeRequest):
                return self._range(message)
            if isinstance(message, WindowRequest):
                return self._window(message)
            if isinstance(message, StreamOpen):
                return self._stream_open(message)
            if isinstance(message, StreamPull):
                return self._stream_pull(message)
            if isinstance(message, StreamClose):
                return self._stream_close(message)
        except ProtocolError as exc:
            return ErrorReply(_request_id(message), exc.code, str(exc))
        except (ValueError, ArithmeticError) as exc:
            if OBS.enabled:
                OBS.registry.counter(
                    "service.errors", code=ErrorCode.INTERNAL.name
                ).inc()
            return ErrorReply(
                _request_id(message), ErrorCode.INTERNAL, str(exc)
            )
        raise ProtocolError(
            f"{type(message).__name__} is not a request",
            ErrorCode.UNSUPPORTED,
        )

    def close(self) -> None:
        """Drop the session, folding every open stream into history."""
        for stream in self._streams.values():
            stream.finalize()
        self._streams.clear()

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def _range(self, message: RangeRequest) -> Answer:
        answer = self._service.server.range_query_detailed(
            message.center, message.radius
        )
        return Answer(
            message.request_id, tuple(answer.neighbors), answer.pages
        )

    def _window(self, message: WindowRequest) -> Answer:
        answer = self._service.server.window_query_detailed(message.window)
        return Answer(
            message.request_id, tuple(answer.neighbors), answer.pages
        )

    def _stream_open(self, message: StreamOpen) -> StreamHandle:
        stream_id = next(self._ids)
        self._streams[stream_id] = _Stream(
            self._service.server, message.query
        )
        if OBS.enabled:
            OBS.registry.counter("service.streams", event="opened").inc()
        return StreamHandle(message.request_id, stream_id)

    def _stream_pull(self, message: StreamPull) -> StreamItems:
        stream = self._streams.get(message.stream_id)
        if stream is None:
            raise ProtocolError(
                f"unknown stream id: {message.stream_id}", ErrorCode.BAD_STREAM
            )
        limit = min(message.max_items, self._service.stream_chunk)
        items = stream.pull(limit)
        return StreamItems(
            message.request_id,
            message.stream_id,
            tuple(items),
            stream.exhausted,
        )

    def _stream_close(self, message: StreamClose) -> StreamEnd:
        stream = self._streams.pop(message.stream_id, None)
        if stream is None:
            raise ProtocolError(
                f"unknown stream id: {message.stream_id}", ErrorCode.BAD_STREAM
            )
        breakdown = stream.finalize()
        if OBS.enabled:
            OBS.registry.counter("service.streams", event="closed").inc()
        return StreamEnd(message.request_id, message.stream_id, breakdown)


def _request_id(message: Message) -> int:
    return getattr(message, "request_id", 0)
