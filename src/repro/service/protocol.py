"""The query service's wire protocol.

Binary, big-endian, versioned.  Every frame is::

    +-------+---------+----------+------------+- - - - - -+
    | magic | version | msg type | length u32 |  payload  |
    | "RQ"  |   u8    |    u8    | of payload |           |
    +-------+---------+----------+------------+- - - - - -+

The payload encodings are fixed per message type (no self-describing
container format): points are pairs of ``f64``, counts are ``u16``/
``u32``, POI payloads carry a one-byte type tag (int / float / str).
Decoding is strict -- truncated frames, trailing bytes, unknown tags,
NaN coordinates and negative distances all raise :class:`ProtocolError`
rather than producing a half-valid message.

Infinity is rejected everywhere except one place where it is meaningful:
the *upper* pruning bound, whose absent state is ``inf`` by definition
(:class:`~repro.index.knn.PruningBounds`).  This is what puts the
Section 3.3 bounds and the client's certified partial result
(``known_certain``) on the wire, so a served EINN prunes exactly like an
in-process one.
"""

from __future__ import annotations

import enum
import math
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple, Type, Union

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.index.pagestats import AccessBreakdown

__all__ = [
    "Answer",
    "ErrorCode",
    "ErrorReply",
    "HEADER_SIZE",
    "KnnRequest",
    "MAX_PAYLOAD",
    "Message",
    "MessageType",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RangeRequest",
    "StreamClose",
    "StreamEnd",
    "StreamHandle",
    "StreamItems",
    "StreamOpen",
    "StreamPull",
    "WindowRequest",
    "decode_message",
    "encode_message",
    "parse_header",
]

MAGIC = b"RQ"
PROTOCOL_VERSION = 2  # v2: AccessBreakdown carries entries_scanned

#: Hard cap on a frame's payload size (1 MiB).  Anything larger is
#: rejected at the framing layer, before any allocation proportional to
#: the claimed length.
MAX_PAYLOAD = 1 << 20

_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_STR = 2


class MessageType(enum.IntEnum):
    """Message discriminator carried in the frame header."""

    KNN_REQUEST = 0x01
    RANGE_REQUEST = 0x02
    WINDOW_REQUEST = 0x03
    STREAM_OPEN = 0x04
    STREAM_PULL = 0x05
    STREAM_CLOSE = 0x06
    ANSWER = 0x10
    STREAM_HANDLE = 0x11
    STREAM_ITEMS = 0x12
    STREAM_END = 0x13
    ERROR = 0x1F


class ErrorCode(enum.IntEnum):
    """Service-level error codes carried by :class:`ErrorReply`."""

    MALFORMED = 1
    UNSUPPORTED = 2
    OVERSIZED = 3
    BAD_STREAM = 4
    TIMEOUT = 5
    OVERLOADED = 6
    INTERNAL = 7


class ProtocolError(ValueError):
    """A frame or message violates the protocol.

    ``code`` is the :class:`ErrorCode` a server should reply with (or
    the reason a client refused to encode/decode).
    """

    def __init__(self, message: str, code: ErrorCode = ErrorCode.MALFORMED):
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KnnRequest:
    """A kNN query with the client's Section 3.3 partial result."""

    request_id: int
    query: Point
    k: int
    bounds: PruningBounds = PruningBounds()
    known_certain: Tuple[NeighborResult, ...] = ()


@dataclass(frozen=True)
class RangeRequest:
    """All POIs within ``radius`` of ``center``."""

    request_id: int
    center: Point
    radius: float


@dataclass(frozen=True)
class WindowRequest:
    """All POIs inside an axis-aligned window."""

    request_id: int
    window: BoundingBox


@dataclass(frozen=True)
class StreamOpen:
    """Open an incremental nearest-neighbor stream (IER's contract)."""

    request_id: int
    query: Point


@dataclass(frozen=True)
class StreamPull:
    """Pull up to ``max_items`` next neighbors from an open stream."""

    request_id: int
    stream_id: int
    max_items: int


@dataclass(frozen=True)
class StreamClose:
    """Close a stream; its page accesses fold into server history."""

    request_id: int
    stream_id: int


@dataclass(frozen=True)
class Answer:
    """A query's neighbors plus its (possibly amortized) page cost."""

    request_id: int
    neighbors: Tuple[NeighborResult, ...]
    breakdown: AccessBreakdown
    batch_size: int = 1


@dataclass(frozen=True)
class StreamHandle:
    """Reply to :class:`StreamOpen`: the server-side stream id."""

    request_id: int
    stream_id: int


@dataclass(frozen=True)
class StreamItems:
    """Reply to :class:`StreamPull`; ``exhausted`` ends the stream."""

    request_id: int
    stream_id: int
    items: Tuple[NeighborResult, ...]
    exhausted: bool


@dataclass(frozen=True)
class StreamEnd:
    """Reply to :class:`StreamClose`: the stream's own page breakdown."""

    request_id: int
    stream_id: int
    breakdown: AccessBreakdown


@dataclass(frozen=True)
class ErrorReply:
    """The server could not answer ``request_id``."""

    request_id: int
    code: ErrorCode
    message: str


Message = Union[
    KnnRequest,
    RangeRequest,
    WindowRequest,
    StreamOpen,
    StreamPull,
    StreamClose,
    Answer,
    StreamHandle,
    StreamItems,
    StreamEnd,
    ErrorReply,
]


# ----------------------------------------------------------------------
# primitive writers / readers
# ----------------------------------------------------------------------
class _Writer:
    """Accumulates a payload; validates values as they are written."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ProtocolError(f"u8 out of range: {value}")
        self._parts.append(_U8.pack(value))

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise ProtocolError(f"u16 out of range: {value}")
        self._parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ProtocolError(f"u32 out of range: {value}")
        self._parts.append(_U32.pack(value))

    def i64(self, value: int) -> None:
        if not -(1 << 63) <= value < (1 << 63):
            raise ProtocolError(f"i64 out of range: {value}")
        self._parts.append(_I64.pack(value))

    def f64(self, value: float, allow_inf: bool = False) -> None:
        _check_float(value, allow_inf)
        self._parts.append(_F64.pack(value))

    def text(self, value: str) -> None:
        data = value.encode("utf-8")
        if len(data) > MAX_PAYLOAD:
            raise ProtocolError("string too long", ErrorCode.OVERSIZED)
        self.u32(len(data))
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Strict cursor over a payload; every read validates its bytes."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise ProtocolError("truncated payload")
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return int(_U8.unpack(self._take(1))[0])

    def u16(self) -> int:
        return int(_U16.unpack(self._take(2))[0])

    def u32(self) -> int:
        return int(_U32.unpack(self._take(4))[0])

    def i64(self) -> int:
        return int(_I64.unpack(self._take(8))[0])

    def f64(self, allow_inf: bool = False) -> float:
        value = float(_F64.unpack(self._take(8))[0])
        _check_float(value, allow_inf)
        return value

    def text(self) -> str:
        size = self.u32()
        try:
            return self._take(size).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid utf-8: {exc}") from exc

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


def _check_float(value: float, allow_inf: bool) -> None:
    if math.isnan(value):
        raise ProtocolError("NaN is not representable on the wire")
    if math.isinf(value) and not allow_inf:
        raise ProtocolError("infinity is only valid as an upper bound")


# ----------------------------------------------------------------------
# composite codecs
# ----------------------------------------------------------------------
def _write_point(w: _Writer, point: Point) -> None:
    w.f64(point.x)
    w.f64(point.y)


def _read_point(r: _Reader) -> Point:
    return Point(r.f64(), r.f64())


def _write_payload(w: _Writer, payload: Any) -> None:
    if isinstance(payload, bool):
        raise ProtocolError(
            "bool POI payloads are not supported", ErrorCode.UNSUPPORTED
        )
    if isinstance(payload, int):
        w.u8(_TAG_INT)
        w.i64(payload)
    elif isinstance(payload, float):
        w.u8(_TAG_FLOAT)
        w.f64(payload)
    elif isinstance(payload, str):
        w.u8(_TAG_STR)
        w.text(payload)
    else:
        raise ProtocolError(
            f"unsupported POI payload type: {type(payload).__name__}",
            ErrorCode.UNSUPPORTED,
        )


def _read_payload(r: _Reader) -> Any:
    tag = r.u8()
    if tag == _TAG_INT:
        return r.i64()
    if tag == _TAG_FLOAT:
        return r.f64()
    if tag == _TAG_STR:
        return r.text()
    raise ProtocolError(f"unknown payload tag: {tag}")


def _write_neighbor(w: _Writer, neighbor: NeighborResult) -> None:
    _write_point(w, neighbor.point)
    if neighbor.distance < 0.0:
        raise ProtocolError("negative neighbor distance")
    w.f64(neighbor.distance)
    _write_payload(w, neighbor.payload)


def _read_neighbor(r: _Reader) -> NeighborResult:
    point = _read_point(r)
    distance = r.f64()
    if distance < 0.0:
        raise ProtocolError("negative neighbor distance")
    return NeighborResult(point, _read_payload(r), distance)


def _write_neighbors(w: _Writer, items: Tuple[NeighborResult, ...]) -> None:
    w.u32(len(items))
    for item in items:
        _write_neighbor(w, item)


def _read_neighbors(r: _Reader) -> Tuple[NeighborResult, ...]:
    count = r.u32()
    return tuple(_read_neighbor(r) for _ in range(count))


def _write_bounds(w: _Writer, bounds: PruningBounds) -> None:
    w.f64(bounds.lower)
    w.f64(bounds.upper, allow_inf=True)


def _read_bounds(r: _Reader) -> PruningBounds:
    lower = r.f64()
    upper = r.f64(allow_inf=True)
    try:
        return PruningBounds(lower, upper)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def _write_breakdown(w: _Writer, b: AccessBreakdown) -> None:
    for value in (
        b.total,
        b.index_nodes,
        b.leaf_nodes,
        b.data_records,
        b.buffer_hits,
        b.buffer_misses,
        b.entries_scanned,
    ):
        w.u32(value)


def _read_breakdown(r: _Reader) -> AccessBreakdown:
    total, index_nodes, leaf_nodes, data, hits, misses, entries = (
        r.u32() for _ in range(7)
    )
    if total != index_nodes + leaf_nodes + data:
        raise ProtocolError("inconsistent access breakdown")
    return AccessBreakdown(
        total=total,
        index_nodes=index_nodes,
        leaf_nodes=leaf_nodes,
        data_records=data,
        buffer_hits=hits,
        buffer_misses=misses,
        entries_scanned=entries,
    )


# ----------------------------------------------------------------------
# per-message encoders / decoders
# ----------------------------------------------------------------------
def _enc_knn(w: _Writer, m: KnnRequest) -> None:
    w.u32(m.request_id)
    _write_point(w, m.query)
    if m.k < 1:
        raise ProtocolError("k must be at least 1")
    w.u16(m.k)
    _write_bounds(w, m.bounds)
    _write_neighbors(w, tuple(m.known_certain))


def _dec_knn(r: _Reader) -> KnnRequest:
    request_id = r.u32()
    query = _read_point(r)
    k = r.u16()
    if k < 1:
        raise ProtocolError("k must be at least 1")
    bounds = _read_bounds(r)
    known = _read_neighbors(r)
    return KnnRequest(request_id, query, k, bounds, known)


def _enc_range(w: _Writer, m: RangeRequest) -> None:
    w.u32(m.request_id)
    _write_point(w, m.center)
    if m.radius < 0.0:
        raise ProtocolError("radius must be non-negative")
    w.f64(m.radius)


def _dec_range(r: _Reader) -> RangeRequest:
    request_id = r.u32()
    center = _read_point(r)
    radius = r.f64()
    if radius < 0.0:
        raise ProtocolError("radius must be non-negative")
    return RangeRequest(request_id, center, radius)


def _enc_window(w: _Writer, m: WindowRequest) -> None:
    w.u32(m.request_id)
    w.f64(m.window.min_x)
    w.f64(m.window.min_y)
    w.f64(m.window.max_x)
    w.f64(m.window.max_y)


def _dec_window(r: _Reader) -> WindowRequest:
    request_id = r.u32()
    min_x, min_y, max_x, max_y = r.f64(), r.f64(), r.f64(), r.f64()
    try:
        window = BoundingBox(min_x, min_y, max_x, max_y)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return WindowRequest(request_id, window)


def _enc_stream_open(w: _Writer, m: StreamOpen) -> None:
    w.u32(m.request_id)
    _write_point(w, m.query)


def _dec_stream_open(r: _Reader) -> StreamOpen:
    return StreamOpen(r.u32(), _read_point(r))


def _enc_stream_pull(w: _Writer, m: StreamPull) -> None:
    w.u32(m.request_id)
    w.u32(m.stream_id)
    if m.max_items < 1:
        raise ProtocolError("max_items must be at least 1")
    w.u16(m.max_items)


def _dec_stream_pull(r: _Reader) -> StreamPull:
    request_id = r.u32()
    stream_id = r.u32()
    max_items = r.u16()
    if max_items < 1:
        raise ProtocolError("max_items must be at least 1")
    return StreamPull(request_id, stream_id, max_items)


def _enc_stream_close(w: _Writer, m: StreamClose) -> None:
    w.u32(m.request_id)
    w.u32(m.stream_id)


def _dec_stream_close(r: _Reader) -> StreamClose:
    return StreamClose(r.u32(), r.u32())


def _enc_answer(w: _Writer, m: Answer) -> None:
    w.u32(m.request_id)
    if m.batch_size < 1:
        raise ProtocolError("batch_size must be at least 1")
    w.u16(m.batch_size)
    _write_breakdown(w, m.breakdown)
    _write_neighbors(w, tuple(m.neighbors))


def _dec_answer(r: _Reader) -> Answer:
    request_id = r.u32()
    batch_size = r.u16()
    if batch_size < 1:
        raise ProtocolError("batch_size must be at least 1")
    breakdown = _read_breakdown(r)
    neighbors = _read_neighbors(r)
    return Answer(request_id, neighbors, breakdown, batch_size)


def _enc_stream_handle(w: _Writer, m: StreamHandle) -> None:
    w.u32(m.request_id)
    w.u32(m.stream_id)


def _dec_stream_handle(r: _Reader) -> StreamHandle:
    return StreamHandle(r.u32(), r.u32())


def _enc_stream_items(w: _Writer, m: StreamItems) -> None:
    w.u32(m.request_id)
    w.u32(m.stream_id)
    w.u8(1 if m.exhausted else 0)
    _write_neighbors(w, tuple(m.items))


def _dec_stream_items(r: _Reader) -> StreamItems:
    request_id = r.u32()
    stream_id = r.u32()
    flag = r.u8()
    if flag not in (0, 1):
        raise ProtocolError(f"invalid exhausted flag: {flag}")
    items = _read_neighbors(r)
    return StreamItems(request_id, stream_id, items, flag == 1)


def _enc_stream_end(w: _Writer, m: StreamEnd) -> None:
    w.u32(m.request_id)
    w.u32(m.stream_id)
    _write_breakdown(w, m.breakdown)


def _dec_stream_end(r: _Reader) -> StreamEnd:
    return StreamEnd(r.u32(), r.u32(), _read_breakdown(r))


def _enc_error(w: _Writer, m: ErrorReply) -> None:
    w.u32(m.request_id)
    w.u16(int(m.code))
    w.text(m.message)


def _dec_error(r: _Reader) -> ErrorReply:
    request_id = r.u32()
    raw_code = r.u16()
    try:
        code = ErrorCode(raw_code)
    except ValueError as exc:
        raise ProtocolError(f"unknown error code: {raw_code}") from exc
    return ErrorReply(request_id, code, r.text())


_CODECS: Dict[
    Type[Message],
    Tuple[MessageType, Callable[..., None], Callable[[_Reader], Message]],
] = {
    KnnRequest: (MessageType.KNN_REQUEST, _enc_knn, _dec_knn),
    RangeRequest: (MessageType.RANGE_REQUEST, _enc_range, _dec_range),
    WindowRequest: (MessageType.WINDOW_REQUEST, _enc_window, _dec_window),
    StreamOpen: (MessageType.STREAM_OPEN, _enc_stream_open, _dec_stream_open),
    StreamPull: (MessageType.STREAM_PULL, _enc_stream_pull, _dec_stream_pull),
    StreamClose: (
        MessageType.STREAM_CLOSE,
        _enc_stream_close,
        _dec_stream_close,
    ),
    Answer: (MessageType.ANSWER, _enc_answer, _dec_answer),
    StreamHandle: (
        MessageType.STREAM_HANDLE,
        _enc_stream_handle,
        _dec_stream_handle,
    ),
    StreamItems: (
        MessageType.STREAM_ITEMS,
        _enc_stream_items,
        _dec_stream_items,
    ),
    StreamEnd: (MessageType.STREAM_END, _enc_stream_end, _dec_stream_end),
    ErrorReply: (MessageType.ERROR, _enc_error, _dec_error),
}

_DECODERS: Dict[MessageType, Callable[[_Reader], Message]] = {
    mtype: decoder for mtype, _, decoder in _CODECS.values()
}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """Encode ``message`` into a complete frame (header + payload)."""
    codec = _CODECS.get(type(message))
    if codec is None:
        raise ProtocolError(
            f"cannot encode {type(message).__name__}", ErrorCode.UNSUPPORTED
        )
    mtype, encoder, _ = codec
    writer = _Writer()
    encoder(writer, message)
    payload = writer.getvalue()
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD",
            ErrorCode.OVERSIZED,
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(mtype), len(payload)) + payload


def parse_header(header: bytes) -> Tuple[MessageType, int]:
    """Validate a frame header; returns ``(message type, payload length)``.

    Raises :class:`ProtocolError` on bad magic, unknown version, unknown
    message type or a payload length above :data:`MAX_PAYLOAD` -- the
    length check happens *here*, before any caller allocates a buffer of
    the claimed size.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"header must be {HEADER_SIZE} bytes")
    magic, version, raw_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic: {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version: {version}", ErrorCode.UNSUPPORTED
        )
    try:
        mtype = MessageType(raw_type)
    except ValueError as exc:
        raise ProtocolError(
            f"unknown message type: {raw_type}", ErrorCode.UNSUPPORTED
        ) from exc
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD",
            ErrorCode.OVERSIZED,
        )
    return mtype, length


def decode_message(frame: bytes) -> Message:
    """Decode a complete frame back into its message.

    The inverse of :func:`encode_message`; strict in both directions
    (``decode(encode(m)) == m`` and any bit-level corruption that
    changes the structure raises).
    """
    if len(frame) < HEADER_SIZE:
        raise ProtocolError("frame shorter than header")
    mtype, length = parse_header(frame[:HEADER_SIZE])
    payload = frame[HEADER_SIZE:]
    if len(payload) != length:
        raise ProtocolError(
            f"declared payload length {length} != actual {len(payload)}"
        )
    reader = _Reader(payload)
    message = _DECODERS[mtype](reader)
    reader.expect_end()
    return message
