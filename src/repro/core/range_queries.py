"""Sharing-based range queries (the paper's Section 5 future work).

The paper closes with "we plan to extend our work to investigate other
types of spatial queries, such as range ... searches".  The certain-circle
machinery extends naturally:

- a peer that executed a query at ``P`` knows *every* POI within its
  certain circle -- for a kNN cache that radius is ``Dist(P, n_k)``, for
  a cached range result it is the query radius itself (knowing that a
  region is empty is knowledge too);
- a range query "all POIs within ``r`` of ``Q``" is fully answerable
  from peers iff the disk ``(Q, r)`` is covered by the union of peer
  certain circles (the same Lemma 3.8 coverage test);
- when it is covered, the answer is exact: every POI in the disk must
  appear in some peer's cache, so filtering the collected candidates by
  distance yields precisely the true result.

Uncovered queries fall back to the server's R-tree range search; there
is no partial-pruning analogue of EINN here because range results have
no ranking to bound, but the server still skips shipping records the
client can already prove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.core.cache import CachedQueryResult
from repro.core.senn import ResolutionTier, SennConfig
from repro.core.backend import SpatialBackend
from repro.core.verification import collect_candidates

__all__ = ["RangeQueryResult", "sharing_range_query", "sharing_window_query"]


@dataclass
class RangeQueryResult:
    """Outcome of one sharing-based range query."""

    neighbors: List[NeighborResult]  # within the radius, ascending distance
    tier: ResolutionTier
    peers_consulted: int
    server_pages: int = 0

    @property
    def answered_by_peers(self) -> bool:
        """True when the range query never reached the server."""
        return self.tier in (
            ResolutionTier.LOCAL_CACHE,
            ResolutionTier.SINGLE_PEER,
            ResolutionTier.MULTI_PEER,
        )


def sharing_range_query(
    query: Point,
    radius: float,
    own_cache: Optional[CachedQueryResult],
    peer_caches: Sequence[CachedQueryResult],
    config: SennConfig,
    server: Optional[SpatialBackend] = None,
) -> RangeQueryResult:
    """Answer "all POIs within ``radius`` of ``query``" via peer sharing.

    Resolution tiers mirror SENN's: LOCAL_CACHE when the host's own cache
    alone covers the disk, SINGLE_PEER when one peer's circle suffices,
    MULTI_PEER when only the union covers it, SERVER otherwise.
    """
    if radius < 0.0:
        raise ValueError("radius must be non-negative")

    target = Circle(query, radius)
    usable_own = own_cache is not None and not own_cache.is_empty()
    usable_peers = [cache for cache in peer_caches if not cache.is_empty()]

    # Tier 0: the host's own previous result.
    if usable_own and _cache_covers_disk(own_cache, target):
        return RangeQueryResult(
            _answer_from_caches(query, radius, [own_cache]),
            ResolutionTier.LOCAL_CACHE,
            peers_consulted=0,
        )

    # Tier 1: any single peer circle covering the disk (Lemma 3.2 analogue).
    ordered = sorted(
        usable_peers, key=lambda cache: query.distance_to(cache.query_location)
    )
    for consulted, cache in enumerate(ordered, start=1):
        if _cache_covers_disk(cache, target):
            caches = ([own_cache] if usable_own else []) + ordered[:consulted]
            return RangeQueryResult(
                _answer_from_caches(query, radius, caches),
                ResolutionTier.SINGLE_PEER,
                peers_consulted=consulted,
            )

    # Tier 2: the merged certain region (Lemma 3.8 analogue).
    all_caches = ([own_cache] if usable_own else []) + ordered
    if all_caches:
        region = CertainRegion(
            method=config.coverage_method, polygon_sides=config.polygon_sides
        )
        for cache in all_caches:
            region.add_circle(cache.certain_circle())
        if region.covers_disk(target):
            return RangeQueryResult(
                _answer_from_caches(query, radius, all_caches),
                ResolutionTier.MULTI_PEER,
                peers_consulted=len(ordered),
            )

    # Tier 3: the server.
    if server is None:
        return RangeQueryResult([], ResolutionTier.SERVER, len(ordered))
    answer = server.range_query_detailed(query, radius)
    return RangeQueryResult(
        answer.neighbors,
        ResolutionTier.SERVER,
        peers_consulted=len(ordered),
        server_pages=answer.pages.total,
    )


def _cache_covers_disk(cache: CachedQueryResult, target: Circle) -> bool:
    """Does this single cache's knowledge cover the whole target disk?

    A cached *range* result (``known_radius`` set) proves the closed
    disk, so closed containment suffices.  A kNN result proves only the
    *open* certain disk plus the cached POIs themselves: an uncached POI
    may sit at exactly ``Dist(P, n_k)`` (a tie at the k-th distance), so
    a target disk touching the certain boundary cannot be answered
    completely and containment must be strict.  Found by repro-difftest
    (duplicate POIs tied at a zero-radius 1-NN cache boundary).
    """
    circle = cache.certain_circle()
    if cache.known_radius is not None:
        return circle.contains_circle(target)
    separation = circle.center.distance_to(target.center)
    return separation + target.radius < circle.radius


def _answer_from_caches(
    query: Point, radius: float, caches: Sequence[CachedQueryResult]
) -> List[NeighborResult]:
    """Exact range answer from covering caches: filter candidates by radius."""
    answer = [
        NeighborResult(point, payload, distance)
        for distance, point, payload in collect_candidates(query, caches)
        if distance <= radius
    ]
    return answer


def sharing_window_query(
    window: BoundingBox,
    own_cache: Optional[CachedQueryResult],
    peer_caches: Sequence[CachedQueryResult],
    config: SennConfig,
    server: Optional[SpatialBackend] = None,
) -> RangeQueryResult:
    """Answer "all POIs inside ``window``" via peer sharing.

    A rectangular window is fully answerable from peers iff its
    circumscribed disk is covered by the certain region (a slightly
    conservative reduction to the disk case: the corners of the window
    touch the disk boundary, so coverage of the disk certainly covers
    the window).  Distances in the result are measured from the window
    center.
    """
    center = window.center
    # The circumscribed disk's radius is the center-to-corner distance.
    radius = center.distance_to(Point(window.max_x, window.max_y))
    disk_result = sharing_range_query(
        center, radius, own_cache, peer_caches, config, server=None
    )
    if disk_result.answered_by_peers:
        inside = [
            neighbor
            for neighbor in disk_result.neighbors
            if window.contains_point(neighbor.point)
        ]
        return RangeQueryResult(
            inside, disk_result.tier, disk_result.peers_consulted
        )
    if server is None:
        return RangeQueryResult(
            [], ResolutionTier.SERVER, disk_result.peers_consulted
        )
    answer = server.window_query_detailed(window)
    return RangeQueryResult(
        answer.neighbors,
        ResolutionTier.SERVER,
        peers_consulted=disk_result.peers_consulted,
        server_pages=answer.pages.total,
    )
