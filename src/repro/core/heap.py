"""The candidate heap ``H`` of Section 3.2.1 (Table 1).

``H`` collects the points of interest discovered while processing peer
caches.  Entries are *certain* (guaranteed members of the true kNN set,
Lemma 3.2 / 3.8) or *uncertain*.  The paper's maintenance rules:

- the size of ``H`` is bounded by the number of queried neighbors ``k``;
- certain entries are kept in ascending distance order, uncertain entries
  likewise after them;
- a newly discovered certain object replaces an uncertain one when the
  heap is full;
- uncertain objects exist only while fewer than ``k`` certain objects are
  known.

A sound verifier gives the heap a stronger structural invariant: any POI
closer to ``Q`` than a certified POI is itself certifiable (its disk is a
subset of the certified one's), so every certain entry precedes every
uncertain entry in distance order.  The class asserts nothing about how
entries were produced, but the property tests in
``tests/test_core_heap.py`` verify the invariant end-to-end.

After verification the heap is in one of six states (Section 3.3) --
or :attr:`HeapState.COMPLETE` when all ``k`` certain neighbors were found.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.runtime import SANITIZER
from repro.geometry.point import Point
from repro.obs import OBS

__all__ = ["CandidateHeap", "HeapEntry", "HeapState"]


class HeapState(enum.Enum):
    """The heap states of Section 3.3 plus the success state."""

    COMPLETE = "complete"  # k certain entries: query fulfilled by peers
    FULL_MIXED = "state-1"  # full, certain + uncertain
    FULL_UNCERTAIN = "state-2"  # full, only uncertain
    PARTIAL_MIXED = "state-3"  # not full, certain + uncertain
    PARTIAL_CERTAIN = "state-4"  # not full, only certain
    PARTIAL_UNCERTAIN = "state-5"  # not full, only uncertain
    EMPTY = "state-6"  # no entries


@dataclass(frozen=True, slots=True)
class HeapEntry:
    """One candidate POI with its distance to the query point."""

    point: Point
    payload: Any
    distance: float
    certain: bool

    def key(self) -> Tuple[float, float, Any]:
        """Dedup identity of the candidate: coordinates plus payload."""
        return (self.point.x, self.point.y, _hashable(self.payload))


class CandidateHeap:
    """The bounded candidate structure ``H``.

    ``capacity`` is the query's ``k``.  Duplicate POIs (the same object
    reported by several peers) are merged, upgrading uncertain entries to
    certain when any report certifies them.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("heap capacity (k) must be at least 1")
        self.capacity = capacity
        self._certain: List[HeapEntry] = []
        self._uncertain: List[HeapEntry] = []
        self._index: Dict[Tuple[float, float, Any], HeapEntry] = {}

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add(self, point: Point, payload: Any, distance: float, certain: bool) -> bool:
        """Offer a candidate; returns True when it is (now) stored.

        Re-offering a stored POI as certain upgrades it; re-offering as
        uncertain is a no-op.
        """
        if not SANITIZER.enabled:
            stored = self._add(point, payload, distance, certain)
        else:
            before = self.state()
            stored = self._add(point, payload, distance, certain)
            SANITIZER.after_heap_add(self, before)
        if OBS.enabled:
            OBS.registry.counter(
                "heap.offers",
                certain="true" if certain else "false",
                outcome="stored" if stored else "rejected",
            ).inc()
        return stored

    def add_batch(
        self, offers: Iterable[Tuple[Point, Any, float, bool]]
    ) -> int:
        """Offer a pre-ordered batch of candidates; returns #stored.

        The batched verifiers hand over whole candidate sets at once.
        Each offer goes through :meth:`add` unchanged — per-offer
        sanitizer checks and ``heap.offers`` accounting are part of the
        heap's contract, so batching must not bypass them.
        """
        stored = 0
        for point, payload, distance, certain in offers:
            if self.add(point, payload, distance, certain):
                stored += 1
        return stored

    def _add(self, point: Point, payload: Any, distance: float, certain: bool) -> bool:
        if distance < 0.0:
            raise ValueError("distance must be non-negative")
        entry = HeapEntry(point, payload, distance, certain)
        key = entry.key()
        existing = self._index.get(key)
        if existing is not None:
            if certain and not existing.certain:
                self._remove(existing)
                return self._insert(entry)
            return True
        return self._insert(entry)

    def _insert(self, entry: HeapEntry) -> bool:
        if entry.certain:
            self._insort(self._certain, entry)
            self._index[entry.key()] = entry
            self._shrink_to_capacity()
            return entry.key() in self._index
        # Uncertain entries are only admitted while certain slots remain
        # unfilled and the heap has room (possibly by displacing a farther
        # uncertain entry).
        if len(self._certain) >= self.capacity:
            return False
        if len(self) < self.capacity:
            self._insort(self._uncertain, entry)
            self._index[entry.key()] = entry
            return True
        worst = self._uncertain[-1] if self._uncertain else None
        if worst is not None and entry.distance < worst.distance:
            self._remove(worst)
            self._insort(self._uncertain, entry)
            self._index[entry.key()] = entry
            return True
        return False

    def _shrink_to_capacity(self) -> None:
        while len(self) > self.capacity:
            if self._uncertain:
                self._remove(self._uncertain[-1])
            else:
                self._remove(self._certain[-1])

    def _remove(self, entry: HeapEntry) -> None:
        bucket = self._certain if entry.certain else self._uncertain
        bucket.remove(entry)
        del self._index[entry.key()]

    @staticmethod
    def _insort(bucket: List[HeapEntry], entry: HeapEntry) -> None:
        index = bisect.bisect_right([e.distance for e in bucket], entry.distance)
        bucket.insert(index, entry)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._certain) + len(self._uncertain)

    def __contains__(self, key: Tuple[float, float, Any]) -> bool:
        return key in self._index

    @property
    def certain_count(self) -> int:
        """Number of entries certified by Lemma 3.2 / Lemma 3.8."""
        return len(self._certain)

    @property
    def uncertain_count(self) -> int:
        """Number of entries held but not yet certified."""
        return len(self._uncertain)

    @property
    def is_full(self) -> bool:
        """True when the heap holds its full capacity of k candidates."""
        return len(self) >= self.capacity

    def is_complete(self) -> bool:
        """True when the kNN query is fulfilled by certain entries alone."""
        return len(self._certain) >= self.capacity

    def is_certain(self, point: Point, payload: Any) -> bool:
        """True when this POI is stored as a certain entry."""
        entry = self._index.get((point.x, point.y, _hashable(payload)))
        return entry is not None and entry.certain

    def certain_entries(self) -> List[HeapEntry]:
        """Certain entries in ascending distance order."""
        return list(self._certain)

    def entries(self) -> List[HeapEntry]:
        """All entries: certain first, then uncertain (Table 1 layout)."""
        return list(self._certain) + list(self._uncertain)

    def last_certain_distance(self) -> Optional[float]:
        """``D_ct``: the distance of the last certain entry, if any."""
        return self._certain[-1].distance if self._certain else None

    def last_entry_distance(self) -> Optional[float]:
        """Distance of the last entry in Table 1 order, if any."""
        if self._uncertain:
            return self._uncertain[-1].distance
        if self._certain:
            return self._certain[-1].distance
        return None

    def max_distance(self) -> Optional[float]:
        """Largest distance over all entries (certain or not)."""
        candidates = []
        if self._certain:
            candidates.append(self._certain[-1].distance)
        if self._uncertain:
            candidates.append(self._uncertain[-1].distance)
        return max(candidates) if candidates else None

    def state(self) -> HeapState:
        """Classify the heap per Section 3.3."""
        if self.is_complete():
            return HeapState.COMPLETE
        has_certain = bool(self._certain)
        has_uncertain = bool(self._uncertain)
        if self.is_full:
            return HeapState.FULL_MIXED if has_certain else HeapState.FULL_UNCERTAIN
        if has_certain and has_uncertain:
            return HeapState.PARTIAL_MIXED
        if has_certain:
            return HeapState.PARTIAL_CERTAIN
        if has_uncertain:
            return HeapState.PARTIAL_UNCERTAIN
        return HeapState.EMPTY

    def __repr__(self) -> str:
        return (
            f"CandidateHeap(k={self.capacity}, certain={self.certain_count}, "
            f"uncertain={self.uncertain_count}, state={self.state().value})"
        )


def _hashable(payload: Any) -> Any:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
