"""The mobile host: position, cache, and the query pipeline.

A :class:`MobileHost` owns a GPS position, a local result cache and a
:class:`~repro.core.senn.SennConfig`.  Issuing a query:

1. discovers peers within the wireless transmission range;
2. collects their cache snapshots over the ad-hoc channel;
3. runs SENN (or SNNN in road-network mode);
4. falls back to the server with pruning bounds when peers cannot
   certify ``k`` neighbors, over-fetching to fill the cache (policy 2);
5. stores the certain result in its own cache for future peers.

Hosts also keep per-tier resolution counters, which the simulator
aggregates into the SQRR statistics of Section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # runtime import stays local to query_range (import cycle)
    from repro.core.range_queries import RangeQueryResult

from repro.geometry.point import Point
from repro.network.graph import SpatialNetwork
from repro.core.backend import SpatialBackend
from repro.core.cache import CachedQueryResult, QueryCache
from repro.core.senn import ResolutionTier, SennConfig, SennResult, senn_query
from repro.core.snnn import SnnnResult, snnn_query

__all__ = ["MobileHost"]


class MobileHost:
    """One mobile client (a vehicle in the paper's setting)."""

    def __init__(
        self,
        host_id: int,
        position: Point,
        config: SennConfig,
    ) -> None:
        self.host_id = host_id
        self.position = position
        self.config = config
        self.cache = QueryCache(config.cache_capacity, history=config.cache_history)
        self.queries_issued = 0
        self.resolution_counts: Dict[ResolutionTier, int] = {
            tier: 0 for tier in ResolutionTier
        }
        # P2P communication accounting (the overhead side of the paper's
        # trade-off): probes sent over the ad-hoc channel, cache
        # snapshots received, and NN tuples transferred.
        self.peer_probes_sent = 0
        self.peer_caches_received = 0
        self.tuples_received = 0

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def in_range_of(self, other: "MobileHost") -> bool:
        """True when ``other`` is within this host's transmission range."""
        return (
            self.position.distance_to(other.position)
            <= self.config.transmission_range
        )

    def reachable_peers(
        self, hosts: Iterable["MobileHost"]
    ) -> List["MobileHost"]:
        """Hosts (excluding self) inside the communication range."""
        return [
            host
            for host in hosts
            if host is not self and self.in_range_of(host)
        ]

    def cache_snapshot(self) -> Optional[CachedQueryResult]:
        """The newest cached result (legacy single-entry view)."""
        return self.cache.get()

    def cache_snapshots(self) -> List[CachedQueryResult]:
        """Everything this host transmits to a querying peer."""
        return [
            entry for entry in self.cache.snapshots() if not entry.is_empty()
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_knn(
        self,
        k: Optional[int] = None,
        peers: Sequence["MobileHost"] = (),
        server: Optional[SpatialBackend] = None,
        timestamp: float = 0.0,
    ) -> SennResult:
        """Issue a Euclidean kNN query (SENN pipeline).

        ``peers`` may be any host collection; only those within range are
        consulted.  The certain result is cached afterwards.
        """
        query_k = self.config.k if k is None else k
        peer_caches = self._collect_peer_caches(peers)
        result = senn_query(
            self.position,
            query_k,
            self.cache.get(),
            peer_caches,
            self.config,
            server=server,
            server_k=self.config.cache_capacity,
        )
        self._account(result.tier)
        self._store_result(result, timestamp)
        return result

    def query_range(
        self,
        radius: float,
        peers: Sequence["MobileHost"] = (),
        server: Optional[SpatialBackend] = None,
        timestamp: float = 0.0,
    ) -> "RangeQueryResult":
        """Issue a range query ("all POIs within ``radius``").

        Implements the paper's Section-5 extension via
        :func:`repro.core.range_queries.sharing_range_query`.  The result
        is cached with the query radius as the known radius, which makes
        it *more* shareable than a kNN result of equal size (the empty
        part of the disk counts as knowledge).
        """
        from repro.core.range_queries import sharing_range_query

        from repro.core.range_queries import RangeQueryResult
        from repro.core.senn import ResolutionTier

        peer_caches = self._collect_peer_caches(peers)
        result = sharing_range_query(
            self.position,
            radius,
            self.cache.get(),
            peer_caches,
            self.config,
            server=None,
        )
        if result.tier is ResolutionTier.SERVER and server is not None:
            # Policy-2 analogue: over-fetch a slightly larger disk so the
            # cached certain circle can cover future nearby queries.
            fetch_radius = radius + self.config.range_overfetch
            answer = server.range_query_detailed(self.position, fetch_radius)
            fetched = answer.neighbors
            self.cache.store(
                self.position, fetched, timestamp, known_radius=fetch_radius
            )
            result = RangeQueryResult(
                [n for n in fetched if n.distance <= radius],
                ResolutionTier.SERVER,
                peers_consulted=result.peers_consulted,
                server_pages=answer.pages.total,
            )
        elif result.answered_by_peers:
            # Even an empty disk is knowledge: cache it with the query
            # radius (QueryCache drops the radius if it must truncate).
            self.cache.store(
                self.position, result.neighbors, timestamp, known_radius=radius
            )
        self._account(result.tier)
        return result

    def query_knn_network(
        self,
        network: SpatialNetwork,
        k: Optional[int] = None,
        peers: Sequence["MobileHost"] = (),
        server: Optional[SpatialBackend] = None,
        timestamp: float = 0.0,
    ) -> SnnnResult:
        """Issue a network-distance kNN query (SNNN pipeline)."""
        query_k = self.config.k if k is None else k
        peer_caches = self._collect_peer_caches(peers)
        result = snnn_query(
            self.position,
            query_k,
            network,
            self.cache.get(),
            peer_caches,
            self.config,
            server=server,
        )
        self._account(result.senn_result.tier)
        self._store_result(result.senn_result, timestamp)
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _collect_peer_caches(
        self, peers: Sequence["MobileHost"]
    ) -> List[CachedQueryResult]:
        """Probe in-range peers; account the communication overhead.

        With ``cache_history > 1`` the host's own older entries are also
        returned (appended after the peers') so the verification passes
        can use every certain circle available.
        """
        caches: List[CachedQueryResult] = []
        for peer in self.reachable_peers(peers):
            self.peer_probes_sent += 1
            snapshots = peer.cache_snapshots()
            if snapshots:
                self.peer_caches_received += len(snapshots)
                self.tuples_received += sum(entry.k for entry in snapshots)
                caches.extend(snapshots)
        own_history = self.cache.snapshots()[1:]  # latest goes separately
        caches.extend(entry for entry in own_history if not entry.is_empty())
        return caches

    def _account(self, tier: ResolutionTier) -> None:
        self.queries_issued += 1
        self.resolution_counts[tier] += 1

    def _store_result(self, result: SennResult, timestamp: float) -> None:
        """Cache policies 1+2: keep the certain NNs of the most recent
        query, including the policy-2 over-fetch surplus (``cacheable``
        is the full server answer when ``server_k > k`` applied)."""
        if result.tier is ResolutionTier.UNCERTAIN:
            # Uncertain answers must not poison the cache: peers would
            # treat the entries as certain.
            return
        if result.cacheable:
            self.cache.store(self.position, result.cacheable, timestamp)

    def server_share(self) -> float:
        """Fraction of this host's queries that reached the server."""
        if self.queries_issued == 0:
            return 0.0
        return self.resolution_counts[ResolutionTier.SERVER] / self.queries_issued

    def __repr__(self) -> str:
        return (
            f"MobileHost(id={self.host_id}, pos=({self.position.x:.3g}, "
            f"{self.position.y:.3g}), queries={self.queries_issued})"
        )
