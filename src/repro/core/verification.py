"""Verification of peer-supplied candidates (Sections 3.2.1 and 3.2.2).

Two verifiers populate the candidate heap:

- :func:`verify_single_peer` (``kNN_single``) applies Lemma 3.2 to one
  peer's cached result: candidate ``n_i`` is certain iff
  ``Dist(Q, n_i) + delta <= Dist(P, n_k)`` where ``delta = Dist(Q, P)``.
  Geometrically: the disk around ``Q`` through ``n_i`` lies inside the
  peer's certain circle.  Because the left side grows with
  ``Dist(Q, n_i)``, candidates are processed in ascending distance and
  classification flips from certain to uncertain exactly once.

- :func:`verify_multi_peer` (``kNN_multiple``) applies Lemma 3.8: the
  union of all peers' certain circles forms the certain region ``R_c``;
  a candidate is certain iff its disk is fully covered by ``R_c``.
  Coverage is monotone in the disk radius, so ascending processing again
  allows an early exit: once one candidate's disk is uncovered, every
  farther candidate's disk is too.

Both verifiers are *sound* by construction: they only certify when the
geometry guarantees that every POI closer to ``Q`` is also known (present
in some peer's cache), which yields exact ranks (Lemma 3.7).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import SANITIZER
from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion, CoverageMethod
from repro.geometry.point import Point
from repro.geometry.vecmath import point_distance_list, point_distances
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.obs import OBS
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS

__all__ = ["verify_single_peer", "verify_multi_peer", "collect_candidates"]

#: Below this many candidates, plain Python lists beat ndarray dispatch
#: overhead (peer caches are usually ``k <= 16`` entries).  Both branches
#: perform the same exact IEEE operations, so the verdicts, distances and
#: processing order are bit-identical either way.
_SMALL_BATCH = 32

#: Hoisted ``verify.*`` instruments: [registry, generation, {key: instrument}].
#: The verifiers run once per peer cache on the SENN hot path; the registry
#: lookup (name + label rendering + lock) is paid once per registry
#: generation instead of once per verification call.  Instruments are
#: created lazily on first use, matching the per-call lookup behaviour.
_instrument_cache: List[Any] = [None, -1, {}]


def _verify_instrument(kind: str, lemma: str, outcome: str = "") -> Any:
    """A ``verify.batch_size`` / ``verify.candidates`` instrument, cached."""
    registry = OBS.registry
    cached = _instrument_cache
    if cached[0] is not registry or cached[1] != registry.generation:
        cached[0] = registry
        cached[1] = registry.generation
        cached[2] = {}
    instruments: Dict[Tuple[str, str, str], Any] = cached[2]
    key = (kind, lemma, outcome)
    instrument = instruments.get(key)
    if instrument is None:
        if kind == "histogram":
            instrument = registry.histogram(
                "verify.batch_size", boundaries=DEFAULT_COUNT_BUCKETS, lemma=lemma
            )
        else:
            instrument = registry.counter(
                "verify.candidates", lemma=lemma, outcome=outcome
            )
        instruments[key] = instrument
    return instrument


def verify_single_peer(
    query: Point,
    cache: CachedQueryResult,
    heap: CandidateHeap,
) -> int:
    """``kNN_single`` against one peer cache; returns #certified entries.

    Every cached POI is offered to the heap -- certain when Lemma 3.2
    holds, uncertain otherwise (an uncertain POI may still be certified
    later by another peer or by the multi-peer pass).
    """
    if not SANITIZER.enabled:
        return _verify_single_peer(query, cache, heap)
    pre = SANITIZER.heap_snapshot(heap)
    certified = _verify_single_peer(query, cache, heap)
    SANITIZER.after_verification(query, (cache,), heap, pre)
    return certified


def _verify_single_peer(
    query: Point,
    cache: CachedQueryResult,
    heap: CandidateHeap,
) -> int:
    if cache.is_empty():
        return 0
    delta = query.distance_to(cache.query_location)
    certain_radius = cache.certain_radius
    neighbors = cache.neighbors
    count = len(neighbors)
    # One batched distance pass over the whole cached result, then one
    # elementwise Lemma 3.2 comparison.  Both sides are the exact IEEE
    # operations the scalar loop performed per candidate (see
    # repro.geometry.vecmath), so each verdict is bit-identical.
    if count <= _SMALL_BATCH:
        distances = point_distance_list(
            query.x,
            query.y,
            [n.point.x for n in neighbors],
            [n.point.y for n in neighbors],
        )
        flags = [distance + delta <= certain_radius for distance in distances]
        # Python's sort is stable, like argsort(kind="stable") below.
        order = sorted(range(count), key=distances.__getitem__)
        certified = sum(flags)
    else:
        xs = np.fromiter((n.point.x for n in neighbors), np.float64, count=count)
        ys = np.fromiter((n.point.y for n in neighbors), np.float64, count=count)
        distance = point_distances(query.x, query.y, xs, ys)
        certain = distance + delta <= certain_radius
        # Stable ascending order matches the scalar sorted() processing order.
        order = np.argsort(distance, kind="stable").tolist()
        distances = distance.tolist()
        flags = certain.tolist()
        certified = int(np.count_nonzero(certain))
    heap.add_batch(
        (
            neighbors[index].point,
            neighbors[index].payload,
            distances[index],
            flags[index],
        )
        for index in order
    )
    if OBS.enabled:
        _verify_instrument("histogram", "3.2").observe(float(count))
        _verify_instrument("counter", "3.2", "certain").inc(certified)
        _verify_instrument("counter", "3.2", "uncertain").inc(count - certified)
    return certified


def verify_multi_peer(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    method: CoverageMethod = CoverageMethod.EXACT,
    polygon_sides: int = 32,
) -> int:
    """``kNN_multiple``: verify candidates against the merged certain region.

    Builds ``R_c`` from all non-empty peer caches and re-examines every
    known candidate in ascending distance order.  Returns the number of
    entries newly certified.  Stops early once a candidate fails: coverage
    is monotone in the candidate's distance.
    """
    if not SANITIZER.enabled:
        return _verify_multi_peer(query, caches, heap, method, polygon_sides)
    pre = SANITIZER.heap_snapshot(heap)
    certified = _verify_multi_peer(query, caches, heap, method, polygon_sides)
    SANITIZER.after_verification(
        query, caches, heap, pre, method=method, polygon_sides=polygon_sides
    )
    return certified


def _verify_multi_peer(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    method: CoverageMethod,
    polygon_sides: int,
) -> int:
    region = CertainRegion(method=method, polygon_sides=polygon_sides)
    for cache in caches:
        if not cache.is_empty():
            region.add_circle(cache.certain_circle())
    if region.is_empty():
        return 0

    candidates = collect_candidates(query, caches)
    precovered = _single_disk_covered(
        query, region, [candidate[0] for candidate in candidates]
    )
    if OBS.enabled:
        _verify_instrument("histogram", "3.8").observe(float(len(candidates)))

    certified = 0
    for index, (distance, point, payload) in enumerate(candidates):
        if heap.is_complete():
            break
        if heap.is_certain(point, payload):
            continue
        target = Circle(query, distance)
        if precovered[index] or region.covers_disk(target):
            heap.add(point, payload, distance, certain=True)
            certified += 1
            if OBS.enabled:
                _verify_instrument("counter", "3.8", "certain").inc()
        else:
            # Monotonicity: a larger disk cannot be covered either.  The
            # remaining candidates stay uncertain; make sure the heap has
            # seen them at least once.
            heap.add(point, payload, distance, certain=False)
            if OBS.enabled:
                _verify_instrument("counter", "3.8", "uncertain").inc()
            break
    return certified


def _single_disk_covered(
    query: Point,
    region: CertainRegion,
    distances: Sequence[float],
) -> List[bool]:
    """Vectorized Lemma 3.8 pre-filter: disks inside one certain circle.

    ``disk_covered_by_disks`` starts with a single-circle containment
    fast path: ``separation + target.radius <= disk.radius - tolerance``.
    This computes that exact predicate for the *whole candidate batch*
    against every certain circle in one broadcasted pass, so the full
    arc-coverage test only runs for candidates the fast path cannot
    settle.  ``True`` therefore always agrees with ``covers_disk``; a
    ``False`` merely means "fall through to the exact test".

    Restricted to the exact backend with the usual non-negative
    tolerance — the polygon backend has different fast-path semantics.
    """
    if not distances:
        return []
    if region.method is not CoverageMethod.EXACT or region.tolerance < 0.0:
        return [False] * len(distances)
    circles = region.circles
    count = len(circles)
    tolerance = region.tolerance
    if count * len(distances) <= _SMALL_BATCH * _SMALL_BATCH:
        separations = point_distance_list(
            query.x,
            query.y,
            [c.center.x for c in circles],
            [c.center.y for c in circles],
        )
        radii_list = [c.radius for c in circles]
        return [
            any(
                separation + distance <= certain_radius - tolerance
                for separation, certain_radius in zip(separations, radii_list)
            )
            for distance in distances
        ]
    cx = np.fromiter((c.center.x for c in circles), np.float64, count=count)
    cy = np.fromiter((c.center.y for c in circles), np.float64, count=count)
    radii = np.fromiter((c.radius for c in circles), np.float64, count=count)
    separation = point_distances(query.x, query.y, cx, cy)[:, np.newaxis]
    certain_radius = radii[:, np.newaxis]
    distance = np.asarray(distances, dtype=np.float64)
    covered = separation + distance <= certain_radius - tolerance
    result: List[bool] = covered.any(axis=0).tolist()
    return result


def collect_candidates(
    query: Point,
    caches: Sequence[CachedQueryResult],
) -> List[Tuple[float, Point, object]]:
    """Deduplicated candidate POIs from all caches, ascending by distance.

    The same physical POI may appear in several caches; the key is its
    coordinates plus payload identity.  Distances for the deduplicated
    set are computed in one vectorized pass (bit-identical to the scalar
    metric); the stable sort preserves first-seen order on exact ties,
    as the scalar implementation did.
    """
    seen: Dict[Tuple[float, float, object], Tuple[Point, object]] = {}
    for cache in caches:
        for neighbor in cache.neighbors:
            key = (neighbor.point.x, neighbor.point.y, _hashable(neighbor.payload))
            if key not in seen:
                seen[key] = (neighbor.point, neighbor.payload)
    if not seen:
        return []
    unique = list(seen.values())
    count = len(unique)
    if count <= _SMALL_BATCH:
        distances = point_distance_list(
            query.x,
            query.y,
            [point.x for point, _ in unique],
            [point.y for point, _ in unique],
        )
    else:
        xs = np.fromiter((point.x for point, _ in unique), np.float64, count=count)
        ys = np.fromiter((point.y for point, _ in unique), np.float64, count=count)
        distances = point_distances(query.x, query.y, xs, ys).tolist()
    items = [
        (distance, point, payload)
        for distance, (point, payload) in zip(distances, unique)
    ]
    items.sort(key=lambda item: item[0])
    return items


def _hashable(payload: object) -> object:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
