"""Verification of peer-supplied candidates (Sections 3.2.1 and 3.2.2).

Two verifiers populate the candidate heap:

- :func:`verify_single_peer` (``kNN_single``) applies Lemma 3.2 to one
  peer's cached result: candidate ``n_i`` is certain iff
  ``Dist(Q, n_i) + delta <= Dist(P, n_k)`` where ``delta = Dist(Q, P)``.
  Geometrically: the disk around ``Q`` through ``n_i`` lies inside the
  peer's certain circle.  Because the left side grows with
  ``Dist(Q, n_i)``, candidates are processed in ascending distance and
  classification flips from certain to uncertain exactly once.

- :func:`verify_multi_peer` (``kNN_multiple``) applies Lemma 3.8: the
  union of all peers' certain circles forms the certain region ``R_c``;
  a candidate is certain iff its disk is fully covered by ``R_c``.
  Coverage is monotone in the disk radius, so ascending processing again
  allows an early exit: once one candidate's disk is uncovered, every
  farther candidate's disk is too.

Both verifiers are *sound* by construction: they only certify when the
geometry guarantees that every POI closer to ``Q`` is also known (present
in some peer's cache), which yields exact ranks (Lemma 3.7).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.runtime import SANITIZER
from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion, CoverageMethod
from repro.geometry.point import Point
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.obs import OBS

__all__ = ["verify_single_peer", "verify_multi_peer", "collect_candidates"]


def verify_single_peer(
    query: Point,
    cache: CachedQueryResult,
    heap: CandidateHeap,
) -> int:
    """``kNN_single`` against one peer cache; returns #certified entries.

    Every cached POI is offered to the heap -- certain when Lemma 3.2
    holds, uncertain otherwise (an uncertain POI may still be certified
    later by another peer or by the multi-peer pass).
    """
    if not SANITIZER.enabled:
        return _verify_single_peer(query, cache, heap)
    pre = SANITIZER.heap_snapshot(heap)
    certified = _verify_single_peer(query, cache, heap)
    SANITIZER.after_verification(query, (cache,), heap, pre)
    return certified


def _verify_single_peer(
    query: Point,
    cache: CachedQueryResult,
    heap: CandidateHeap,
) -> int:
    if cache.is_empty():
        return 0
    delta = query.distance_to(cache.query_location)
    certain_radius = cache.certain_radius
    certified = 0
    candidates = sorted(
        cache.neighbors, key=lambda n: query.distance_to(n.point)
    )
    for neighbor in candidates:
        distance = query.distance_to(neighbor.point)
        certain = distance + delta <= certain_radius
        if certain:
            certified += 1
        heap.add(neighbor.point, neighbor.payload, distance, certain)
    if OBS.enabled:
        OBS.registry.counter(
            "verify.candidates", lemma="3.2", outcome="certain"
        ).inc(certified)
        OBS.registry.counter(
            "verify.candidates", lemma="3.2", outcome="uncertain"
        ).inc(len(candidates) - certified)
    return certified


def verify_multi_peer(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    method: CoverageMethod = CoverageMethod.EXACT,
    polygon_sides: int = 32,
) -> int:
    """``kNN_multiple``: verify candidates against the merged certain region.

    Builds ``R_c`` from all non-empty peer caches and re-examines every
    known candidate in ascending distance order.  Returns the number of
    entries newly certified.  Stops early once a candidate fails: coverage
    is monotone in the candidate's distance.
    """
    if not SANITIZER.enabled:
        return _verify_multi_peer(query, caches, heap, method, polygon_sides)
    pre = SANITIZER.heap_snapshot(heap)
    certified = _verify_multi_peer(query, caches, heap, method, polygon_sides)
    SANITIZER.after_verification(
        query, caches, heap, pre, method=method, polygon_sides=polygon_sides
    )
    return certified


def _verify_multi_peer(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    method: CoverageMethod,
    polygon_sides: int,
) -> int:
    region = CertainRegion(method=method, polygon_sides=polygon_sides)
    for cache in caches:
        if not cache.is_empty():
            region.add_circle(cache.certain_circle())
    if region.is_empty():
        return 0

    certified = 0
    for distance, point, payload in collect_candidates(query, caches):
        if heap.is_complete():
            break
        if heap.is_certain(point, payload):
            continue
        target = Circle(query, distance)
        if region.covers_disk(target):
            heap.add(point, payload, distance, certain=True)
            certified += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "verify.candidates", lemma="3.8", outcome="certain"
                ).inc()
        else:
            # Monotonicity: a larger disk cannot be covered either.  The
            # remaining candidates stay uncertain; make sure the heap has
            # seen them at least once.
            heap.add(point, payload, distance, certain=False)
            if OBS.enabled:
                OBS.registry.counter(
                    "verify.candidates", lemma="3.8", outcome="uncertain"
                ).inc()
            break
    return certified


def collect_candidates(
    query: Point,
    caches: Sequence[CachedQueryResult],
) -> List[Tuple[float, Point, object]]:
    """Deduplicated candidate POIs from all caches, ascending by distance.

    The same physical POI may appear in several caches; the key is its
    coordinates plus payload identity.
    """
    seen: Dict[Tuple[float, float, object], Tuple[float, Point, object]] = {}
    for cache in caches:
        for neighbor in cache.neighbors:
            key = (neighbor.point.x, neighbor.point.y, _hashable(neighbor.payload))
            if key not in seen:
                distance = query.distance_to(neighbor.point)
                seen[key] = (distance, neighbor.point, neighbor.payload)
    return sorted(seen.values(), key=lambda item: item[0])


def _hashable(payload: object) -> object:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
