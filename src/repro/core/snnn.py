"""SNNN: Sharing-based Network distance Nearest Neighbor query.

Algorithm 2 of the paper, built on SENN and Incremental Euclidean
Restriction (Section 3.4):

1. obtain ``k`` certain Euclidean NNs via SENN;
2. compute their network distances on the host's local modeling graph
   and sort; the k-th network distance becomes the search bound
   ``S_bound``;
3. incrementally fetch further Euclidean NNs (from peers' verified
   results first, then the server) and refine the candidate set until the
   next Euclidean NN lies beyond ``S_bound`` -- correct because the
   Euclidean distance lower-bounds the network distance.

The incremental stream is exactly IER's contract, so the implementation
delegates the loop to
:func:`repro.network.ier.incremental_euclidean_restriction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.geometry.tolerance import near_zero
from repro.index.knn import NeighborResult
from repro.network.dijkstra import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.index import NetworkIndex
from repro.network.ier import NetworkNeighbor, incremental_euclidean_restriction
from repro.core.cache import CachedQueryResult
from repro.core.senn import ResolutionTier, SennConfig, SennResult, senn_query
from repro.core.backend import SpatialBackend
from repro.obs import OBS

__all__ = ["SnnnResult", "snnn_query"]


@dataclass
class SnnnResult:
    """Outcome of one SNNN query."""

    neighbors: List[NetworkNeighbor]
    senn_result: SennResult
    candidates_from_peers: int
    candidates_from_server: int

    @property
    def used_server(self) -> bool:
        """True when any part of the answer required the server."""
        return (
            self.senn_result.tier is ResolutionTier.SERVER
            or self.candidates_from_server > 0
        )


def snnn_query(
    query: Point,
    k: int,
    network: SpatialNetwork,
    own_cache: Optional[CachedQueryResult],
    peer_caches: Sequence[CachedQueryResult],
    config: SennConfig,
    server: Optional[SpatialBackend] = None,
    index: Optional[NetworkIndex] = None,
) -> SnnnResult:
    """Run Algorithm 2.

    The host's local modeling graph ``network`` supplies all network
    distances; the query point and every candidate POI are snapped onto
    it.  ``server`` is consulted for Euclidean NNs beyond what the peers
    can certify (and is required whenever the peer caches cannot certify
    even the first ``k``).

    ``index`` optionally supplies the network distances through a
    :class:`repro.network.index.NetworkIndex` (e.g. the precomputed
    hierarchy); its contract requires answers bit-identical to the
    default per-candidate Dijkstra, so the results are unchanged --
    only the settled-vertex cost drops.
    """
    if k < 1:
        raise ValueError("k must be at least 1")

    origin = network.snap(query)
    # The query host may stand slightly off the network; IER's stop rule
    # needs ED <= ND, which only holds between *on-network* locations.
    # Shrinking every Euclidean distance by the snap displacement restores
    # the lower-bound property (POIs are assumed to lie on the network).
    snap_slack = query.distance_to(origin.point)
    stats = {"peers": 0, "server": 0}

    senn_result = senn_query(
        query, k, own_cache, peer_caches, config, server=server
    )

    def adjusted(neighbor: NeighborResult) -> NeighborResult:
        if near_zero(snap_slack):
            return neighbor
        return NeighborResult(
            neighbor.point, neighbor.payload, max(0.0, neighbor.distance - snap_slack)
        )

    def euclidean_stream() -> Iterator[NeighborResult]:
        """Certified SENN results first, then the server incrementally."""
        yielded: Set[Tuple[float, float, object]] = set()
        for neighbor in senn_result.neighbors:
            key = _key(neighbor)
            if key in yielded:
                continue
            yielded.add(key)
            stats["peers" if senn_result.answered_by_peers else "server"] += 1
            yield adjusted(neighbor)
        if server is None:
            return
        for neighbor in server.incremental_query(query):
            key = _key(neighbor)
            if key in yielded:
                continue
            yielded.add(key)
            stats["server"] += 1
            yield adjusted(neighbor)

    def network_distance_of(candidate: NeighborResult) -> float:
        snapped = network.snap(candidate.point)
        if index is not None:
            return index.network_distance(origin, snapped)
        return network_distance(network, origin, snapped)

    neighbors = incremental_euclidean_restriction(
        euclidean_stream(), network_distance_of, k
    )
    if OBS.enabled:
        OBS.registry.counter("snnn.queries").inc()
        OBS.registry.counter("snnn.candidates", source="peers").inc(stats["peers"])
        OBS.registry.counter("snnn.candidates", source="server").inc(
            stats["server"]
        )
    return SnnnResult(
        neighbors,
        senn_result,
        candidates_from_peers=stats["peers"],
        candidates_from_server=stats["server"],
    )


def _key(neighbor: NeighborResult) -> Tuple[float, float, object]:
    payload = neighbor.payload
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        payload = id(payload)  # repro: noqa(RPR010)
    return (neighbor.point.x, neighbor.point.y, payload)
