"""Naive (unverified) result sharing -- the strawman SENN improves on.

Cooperative-caching schemes that exchange plain data items (the paper
cites COCA [3]) have no notion of spatial certainty: a client that
receives a nearby peer's cached kNN result can only *adopt* it and hope
the overlap is good enough.  This module implements that strategy so the
benchmarks can quantify the accuracy SENN's verification buys:

- the client picks the peer whose cached query location is closest;
- if that location is within ``adoption_radius``, it re-ranks the peer's
  cached POIs by its own distance and adopts the top k -- without any
  guarantee that closer POIs are not missing;
- otherwise it asks the server.

Adopted answers are often correct when the peer stood very close, but
they silently degrade with distance; :func:`evaluate_accuracy` measures
exactly how often and how badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.core.cache import CachedQueryResult
from repro.core.senn import ResolutionTier
from repro.core.backend import SpatialBackend

__all__ = ["NaiveShareResult", "naive_share_query", "evaluate_accuracy"]


@dataclass
class NaiveShareResult:
    """Outcome of one unverified shared query."""

    neighbors: List[NeighborResult]
    tier: ResolutionTier  # SINGLE_PEER (adopted) or SERVER
    adopted_from_distance: Optional[float] = None
    server_pages: int = 0


def naive_share_query(
    query: Point,
    k: int,
    peer_caches: Sequence[CachedQueryResult],
    adoption_radius: float,
    server: Optional[SpatialBackend] = None,
) -> NaiveShareResult:
    """Adopt the closest peer's cached result, or fall back to the server.

    No verification is performed: the answer may miss POIs the peer never
    cached.  ``adoption_radius`` is the policy knob -- how far away a
    peer's query location may be and still be trusted.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if adoption_radius < 0.0:
        raise ValueError("adoption_radius must be non-negative")

    usable = [
        cache
        for cache in peer_caches
        if not cache.is_empty() and len(cache.neighbors) >= 1
    ]
    if usable:
        closest = min(
            usable, key=lambda cache: query.distance_to(cache.query_location)
        )
        separation = query.distance_to(closest.query_location)
        if separation <= adoption_radius:
            reranked = sorted(
                (
                    NeighborResult(n.point, n.payload, query.distance_to(n.point))
                    for n in closest.neighbors
                ),
                key=lambda n: n.distance,
            )[:k]
            return NaiveShareResult(
                reranked,
                ResolutionTier.SINGLE_PEER,
                adopted_from_distance=separation,
            )

    if server is None:
        return NaiveShareResult([], ResolutionTier.SERVER)
    answer = server.knn_query_detailed(query, k)
    return NaiveShareResult(
        answer.neighbors,
        ResolutionTier.SERVER,
        server_pages=answer.pages.total,
    )


@dataclass
class AccuracyReport:
    """How an answer set compares to the exact kNN."""

    exact_sets: int = 0  # answers equal to the true kNN set
    total: int = 0
    missing_neighbors: int = 0  # true NNs absent across all answers
    distance_error_sum: float = 0.0  # sum of relative k-th-distance error

    @property
    def exact_ratio(self) -> float:
        """Fraction of answer sets that matched the exact kNN result."""
        return self.exact_sets / self.total if self.total else 1.0

    @property
    def mean_distance_error(self) -> float:
        """Mean relative error of the k-th neighbor distance."""
        return self.distance_error_sum / self.total if self.total else 0.0


def evaluate_accuracy(
    answer: Sequence[NeighborResult],
    truth: Sequence[Tuple[float, object]],
    report: AccuracyReport,
) -> None:
    """Accumulate one answer's accuracy against the true kNN.

    ``truth`` is ``[(distance, payload), ...]`` ascending.  Exactness is
    judged on payload sets; the distance error compares the answer's
    k-th distance to the true k-th distance (0 when exact).
    """
    report.total += 1
    true_payloads = {payload for _, payload in truth}
    got_payloads = {n.payload for n in answer}
    missing = len(true_payloads - got_payloads)
    report.missing_neighbors += missing
    if missing == 0 and len(got_payloads) == len(true_payloads):
        report.exact_sets += 1
    if truth and answer:
        true_kth = truth[-1][0]
        got_kth = answer[-1].distance
        if true_kth > 0.0:
            report.distance_error_sum += max(0.0, got_kth - true_kth) / true_kth
