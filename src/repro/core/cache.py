"""Per-host cached NN query results (Section 4.1's cache policies).

Each mobile host manages its local cache with two policies:

1. it stores only the query location and all *certain* nearest neighbors
   of its most recent query;
2. when a query must go to the server it asks for as many NNs as the
   cache capacity allows, so the cached certain circle is as large as
   possible.

A :class:`CachedQueryResult` is what peers exchange: the query location
``P``, the ordered certain neighbors, and the derived *certain circle*
(center ``P``, radius ``Dist(P, n_k)``) -- the region within which the
peer provably knows every POI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.obs import OBS

__all__ = ["CachedQueryResult", "QueryCache"]


@dataclass(frozen=True)
class CachedQueryResult:
    """An immutable snapshot of one cached query result.

    ``neighbors`` are certain NNs of ``query_location`` in ascending
    distance order; invalid orderings are rejected because every
    verification lemma depends on ``Dist(P, n_k)`` being the maximum.

    ``known_radius`` widens the certain circle beyond the farthest
    neighbor: a cached *range* result of radius ``r`` proves knowledge of
    the whole disk, including the empty part beyond the last POI.  For
    kNN results it stays ``None`` and the classic ``Dist(P, n_k)``
    radius applies.
    """

    query_location: Point
    neighbors: Tuple[NeighborResult, ...]
    timestamp: float = 0.0
    known_radius: Optional[float] = None

    def __post_init__(self) -> None:
        distances = [n.distance for n in self.neighbors]
        if any(b < a - 1e-9 for a, b in zip(distances, distances[1:])):
            raise ValueError("cached neighbors must be in ascending distance order")
        if self.known_radius is not None:
            if self.known_radius < 0.0:
                raise ValueError("known_radius must be non-negative")
            if distances and self.known_radius < distances[-1] - 1e-9:
                raise ValueError(
                    "known_radius cannot be smaller than the farthest neighbor"
                )

    @property
    def k(self) -> int:
        """Number of cached neighbors (the k of the original query)."""
        return len(self.neighbors)

    def is_empty(self) -> bool:
        """True when the cache certifies nothing (no POIs and no radius)."""
        return not self.neighbors and not self.known_radius

    @property
    def certain_radius(self) -> float:
        """Radius of the certain circle around ``query_location``."""
        if self.known_radius is not None:
            return self.known_radius
        return self.neighbors[-1].distance if self.neighbors else 0.0

    def certain_circle(self) -> Circle:
        """The peer's certain circle (Lemma 3.8's ``P_area``)."""
        return Circle(self.query_location, self.certain_radius)


class QueryCache:
    """A host's local result cache.

    ``capacity`` bounds how many NN objects are stored per entry
    (``C_size`` in Tables 3-4).  The paper's policy 1 keeps only the most
    recent query's result (``history=1``, the default); ``history > 1``
    is this repository's extension that retains the last N results, each
    with its own query location and certain circle -- peers then receive
    several circles from one host, widening the merged certain region.
    """

    def __init__(self, capacity: int, history: int = 1) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if history < 1:
            raise ValueError("history must be at least 1")
        self.capacity = capacity
        self.history = history
        self._entries: List[CachedQueryResult] = []
        self.store_count = 0

    def store(
        self,
        query_location: Point,
        neighbors: Sequence[NeighborResult],
        timestamp: float = 0.0,
        known_radius: Optional[float] = None,
    ) -> CachedQueryResult:
        """Replace the cache with the certain results of the newest query.

        Only the nearest ``capacity`` neighbors are retained; because the
        retained set is a distance-prefix, the certain-circle semantics
        stay exact.  ``known_radius`` records range-query knowledge -- it
        must be dropped if truncation removed neighbors, since the disk
        is then no longer fully known.
        """
        ordered = sorted(neighbors, key=lambda n: n.distance)
        truncated = len(ordered) > self.capacity
        ordered = ordered[: self.capacity]
        radius = None if truncated else known_radius
        entry = CachedQueryResult(query_location, tuple(ordered), timestamp, radius)
        self._entries.append(entry)
        if len(self._entries) > self.history:
            self._entries.pop(0)
        self.store_count += 1
        if OBS.enabled:
            OBS.registry.counter(
                "cache.stores", truncated="true" if truncated else "false"
            ).inc()
        return entry

    def get(self) -> Optional[CachedQueryResult]:
        """The most recent cached result, or ``None`` when cold."""
        entry = self._entries[-1] if self._entries else None
        if OBS.enabled:
            OBS.registry.counter(
                "cache.lookups", outcome="hit" if entry is not None else "miss"
            ).inc()
        return entry

    def snapshots(self) -> List[CachedQueryResult]:
        """All retained results, newest first (what peers receive)."""
        return list(reversed(self._entries))

    def clear(self) -> None:
        """Drop every retained result (e.g. on cache invalidation)."""
        self._entries.clear()

    def is_empty(self) -> bool:
        """True when no retained result holds any neighbor tuples."""
        return all(entry.is_empty() for entry in self._entries) if self._entries else True

    def tuple_count(self) -> int:
        """Number of cached NN tuples (the P2P transfer size proxy)."""
        return sum(entry.k for entry in self._entries)

    def __repr__(self) -> str:
        latest = self.get()
        if latest is None:
            return f"QueryCache(capacity={self.capacity}, empty)"
        return (
            f"QueryCache(capacity={self.capacity}, history={self.history}, "
            f"entries={len(self._entries)}, latest_k={latest.k}, "
            f"radius={latest.certain_radius:.4g})"
        )
