"""The spatial-query backend contract shared by server and service.

Historically the SENN/SNNN pipelines were welded to the in-process
:class:`~repro.core.server.SpatialDatabaseServer`.  With the query
service (:mod:`repro.service`) the same pipelines must also run against
a remote server reached over a wire protocol, so the dependency is
inverted: everything above the server programs against the
:class:`SpatialBackend` protocol defined here, and both the in-process
server and the service-backed client implement it.

The protocol's query methods return a :class:`QueryAnswer` -- the
neighbor list *plus* the page-access breakdown of exactly that query.
Callers must never read breakdowns back out of shared mutable server
state (``last_query_breakdown()``): the moment two queries interleave
(which a concurrent service guarantees), the "last" breakdown belongs
to somebody else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Protocol, Sequence, runtime_checkable

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.index.pagestats import AccessBreakdown

__all__ = ["QueryAnswer", "SpatialBackend"]


@dataclass(frozen=True)
class QueryAnswer:
    """One query's complete outcome: the neighbors and what they cost.

    ``pages`` is the access breakdown attributed to this query alone.
    When the query was executed as part of a merged batch (the service's
    shared traversals), ``batch_size`` records how many client requests
    shared the traversal and ``pages`` holds this request's amortized
    share of the batch's node reads (object-record accesses stay exact
    per client).
    """

    neighbors: List[NeighborResult] = field(default_factory=list)
    pages: AccessBreakdown = field(
        default_factory=lambda: AccessBreakdown(0, 0, 0)
    )
    batch_size: int = 1

    @property
    def total_pages(self) -> int:
        """Shorthand for ``pages.total``."""
        return self.pages.total


@runtime_checkable
class SpatialBackend(Protocol):
    """What SENN/SNNN/naive-sharing need from "the server".

    Implemented by :class:`~repro.core.server.SpatialDatabaseServer`
    (in-process) and :class:`repro.service.client.ServiceClient`
    (through the wire protocol, over any transport).  The incremental
    stream must meter onto its own sub-counter so interleaved queries
    cannot steal each other's page accesses.
    """

    def knn_query_detailed(
        self,
        query: Point,
        k: int,
        bounds: PruningBounds = ...,
        known_certain: Sequence[NeighborResult] = ...,
    ) -> QueryAnswer:
        """Answer a kNN query; breakdown attributed to this call only."""
        ...

    def range_query_detailed(
        self, center: Point, radius: float
    ) -> QueryAnswer:
        """All POIs within ``radius``, ascending, with this call's pages."""
        ...

    def window_query_detailed(self, window: BoundingBox) -> QueryAnswer:
        """All POIs inside ``window``, ascending from its center."""
        ...

    def incremental_query(
        self, query: Point, meter: bool = ...
    ) -> Iterator[NeighborResult]:
        """Lazy ascending-distance neighbor stream (IER's contract)."""
        ...
