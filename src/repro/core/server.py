"""The remote spatial database server.

The server indexes the POI set with an R*-tree (branching factor 30, as
in Section 4.4) and answers kNN queries with one of three algorithms:

- ``EINN`` -- the paper's extended best-first search with pruning bounds
  (the default; with empty bounds it behaves exactly like INN);
- ``INN`` -- plain best-first incremental NN;
- ``DEPTH_FIRST`` -- the classic branch-and-bound baseline.

Every query is metered through a :class:`PageAccessCounter`, optionally
backed by an LRU :class:`BufferPool`, producing the PAR statistics of
Section 4.4.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import (
    NeighborResult,
    PruningBounds,
    incremental_nearest,
    k_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
)
from repro.index.pagestats import AccessBreakdown, BufferPool, PageAccessCounter
from repro.index.rtree import RTree, RTreeConfig
from repro.core.backend import QueryAnswer
from repro.obs import DEFAULT_COUNT_BUCKETS, OBS

__all__ = ["ServerAlgorithm", "SpatialDatabaseServer"]


class ServerAlgorithm(enum.Enum):
    """kNN algorithm executed by the server."""

    EINN = "einn"
    INN = "inn"
    DEPTH_FIRST = "depth-first"


class SpatialDatabaseServer:
    """A stationary spatial database reachable over the point-to-point
    channel.

    >>> server = SpatialDatabaseServer.from_points([(Point(1, 1), "gas-1")])
    >>> [r.payload for r in server.knn_query(Point(0, 0), 1)]
    ['gas-1']
    """

    def __init__(
        self,
        tree: RTree,
        algorithm: ServerAlgorithm = ServerAlgorithm.EINN,
        buffer_capacity: int = 0,
    ) -> None:
        self.tree = tree
        self.algorithm = algorithm
        pool = BufferPool(buffer_capacity) if buffer_capacity > 0 else None
        self.counter = PageAccessCounter(buffer_pool=pool)
        self.queries_served = 0

    @classmethod
    def from_points(
        cls,
        items: Sequence[Tuple[Point, Any]],
        algorithm: ServerAlgorithm = ServerAlgorithm.EINN,
        tree_config: Optional[RTreeConfig] = None,
        buffer_capacity: int = 0,
        bulk: bool = True,
    ) -> "SpatialDatabaseServer":
        """Build a server over a static POI set.

        ``bulk=True`` uses STR packing; ``bulk=False`` inserts one by one
        (exercising the R* insertion path, useful for small dynamic sets).
        """
        config = tree_config if tree_config is not None else RTreeConfig()
        if bulk:
            tree = RTree.bulk_load(list(items), config)
        else:
            tree = RTree(config)
            for point, payload in items:
                tree.insert(point, payload)
        return cls(tree, algorithm=algorithm, buffer_capacity=buffer_capacity)

    @property
    def poi_count(self) -> int:
        """Number of POIs in the server's R*-tree."""
        return len(self.tree)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn_query_detailed(
        self,
        query: Point,
        k: int,
        bounds: PruningBounds = PruningBounds(),
        known_certain: Sequence[NeighborResult] = (),
        algorithm: Optional[ServerAlgorithm] = None,
    ) -> QueryAnswer:
        """Answer a kNN query, metering page accesses.

        ``bounds`` and ``known_certain`` are the client's partial result
        (Algorithm 1, line 19-20); they are honored only by EINN -- the
        other algorithms ignore them, which is exactly the INN-vs-EINN
        comparison of Section 4.4.

        Returns the neighbors together with *this* query's access
        breakdown, so callers never have to read it back out of the
        shared counter (which another interleaved query may have moved
        on by then).
        """
        chosen = algorithm if algorithm is not None else self.algorithm
        self.counter.start_query()
        if chosen is ServerAlgorithm.EINN:
            results = k_nearest_einn(
                self.tree, query, k, bounds, known_certain, self.counter
            )
        elif chosen is ServerAlgorithm.INN:
            results = k_nearest(self.tree, query, k, self.counter)
        else:
            results = k_nearest_depth_first(self.tree, query, k, self.counter)
        self._record_shipped_objects(chosen, results, known_certain)
        breakdown = self.counter.finish_query()
        self.queries_served += 1
        if OBS.enabled:
            OBS.registry.counter(
                "server.knn_queries", algorithm=chosen.value
            ).inc()
            OBS.registry.histogram(
                "server.pages_per_query",
                boundaries=DEFAULT_COUNT_BUCKETS,
                algorithm=chosen.value,
            ).observe(float(breakdown.total))
        return QueryAnswer(results, breakdown)

    def knn_query(
        self,
        query: Point,
        k: int,
        bounds: PruningBounds = PruningBounds(),
        known_certain: Sequence[NeighborResult] = (),
        algorithm: Optional[ServerAlgorithm] = None,
    ) -> List[NeighborResult]:
        """Neighbors-only convenience wrapper over
        :meth:`knn_query_detailed`."""
        return self.knn_query_detailed(
            query, k, bounds, known_certain, algorithm
        ).neighbors

    def _record_shipped_objects(
        self,
        algorithm: ServerAlgorithm,
        results: Sequence[NeighborResult],
        known_certain: Sequence[NeighborResult],
    ) -> None:
        """Account one data-node access per object record the server ships.

        The R*-tree leaves hold object ids; materializing each result
        record costs a page.  EINN only ships the records the client does
        not already hold -- the "fewer objects" half of Section 4.4's
        EINN advantage.  INN and the depth-first baseline ship everything.
        """
        if algorithm is ServerAlgorithm.EINN:
            skip = {
                (r.point.x, r.point.y, _payload_key(r.payload))
                for r in known_certain
            }
        else:
            skip = set()
        shipped = 0
        for result in results:
            key = (result.point.x, result.point.y, _payload_key(result.payload))
            if key not in skip:
                self.counter.record_object(key)
                shipped += 1
        if OBS.enabled:
            OBS.registry.counter("server.objects", outcome="shipped").inc(shipped)
            OBS.registry.counter("server.objects", outcome="skipped").inc(
                len(results) - shipped
            )

    def range_query_detailed(self, center: Point, radius: float) -> QueryAnswer:
        """All POIs within ``radius`` of ``center``, ascending by distance.

        Uses the R-tree's circle search; page accesses and shipped result
        records are metered like kNN queries, and the breakdown is
        returned with the answer.
        """
        self.counter.start_query()
        entries = self.tree.circle_search(center, radius, self.counter)
        results = sorted(
            (
                NeighborResult(e.point, e.payload, center.distance_to(e.point))
                for e in entries
            ),
            key=lambda r: r.distance,
        )
        for result in results:
            self.counter.record_object(
                (result.point.x, result.point.y, _payload_key(result.payload))
            )
        breakdown = self.counter.finish_query()
        self.queries_served += 1
        if OBS.enabled:
            OBS.registry.counter("server.range_queries").inc()
            OBS.registry.histogram(
                "server.pages_per_query",
                boundaries=DEFAULT_COUNT_BUCKETS,
                algorithm="range",
            ).observe(float(breakdown.total))
        return QueryAnswer(results, breakdown)

    def range_query(self, center: Point, radius: float) -> List[NeighborResult]:
        """Neighbors-only convenience wrapper over
        :meth:`range_query_detailed`."""
        return self.range_query_detailed(center, radius).neighbors

    def window_query_detailed(self, window: BoundingBox) -> QueryAnswer:
        """All POIs inside ``window``, ascending by distance from its
        center, metered like every other query."""
        center = window.center
        self.counter.start_query()
        entries = self.tree.range_search(window, self.counter)
        results = sorted(
            (
                NeighborResult(e.point, e.payload, center.distance_to(e.point))
                for e in entries
            ),
            key=lambda r: r.distance,
        )
        for result in results:
            self.counter.record_object(
                (result.point.x, result.point.y, _payload_key(result.payload))
            )
        breakdown = self.counter.finish_query()
        self.queries_served += 1
        if OBS.enabled:
            OBS.registry.counter("server.window_queries").inc()
            OBS.registry.histogram(
                "server.pages_per_query",
                boundaries=DEFAULT_COUNT_BUCKETS,
                algorithm="window",
            ).observe(float(breakdown.total))
        return QueryAnswer(results, breakdown)

    def incremental_query(
        self, query: Point, meter: bool = True
    ) -> Iterator[NeighborResult]:
        """Lazy ascending-distance neighbor stream (used by SNNN).

        Each stream bills onto its own sub-counter, folded into the
        shared counter's history when the stream is exhausted or closed.
        Billing lazily onto the *shared* per-query registers instead
        (the pre-service behavior) attributed a stream's pages to
        whichever query happened to be open when the consumer pulled --
        and double-counted them in :meth:`mean_page_accesses` once that
        query finished.
        """
        if not meter:
            return incremental_nearest(self.tree, query, None)
        return self._metered_stream(query)

    def _metered_stream(self, query: Point) -> Iterator[NeighborResult]:
        sub = self.counter.subcounter()
        sub.start_query()
        try:
            yield from incremental_nearest(self.tree, query, sub)
        finally:
            self.counter.absorb(sub.finish_query())

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def last_query_breakdown(self) -> Optional[AccessBreakdown]:
        """Page-access breakdown of the most recent query, if any."""
        return self.counter.history[-1] if self.counter.history else None

    def mean_page_accesses(self) -> float:
        """Mean page accesses per query (the PAR metric of Section 4)."""
        return self.counter.mean_per_query()

    def reset_statistics(self) -> None:
        """Zero the page counter and query tally (end of warm-up)."""
        self.counter.reset()
        self.queries_served = 0

    def __repr__(self) -> str:
        return (
            f"SpatialDatabaseServer({self.poi_count} POIs, "
            f"{self.algorithm.value}, {self.queries_served} queries served)"
        )


def _payload_key(payload: Any) -> Any:
    # Hashability probe for the shipped-object ledger: hash equality
    # follows object equality, and the id() fallback only labels
    # unhashable payloads within one run, so the key is observationally
    # deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
