"""SENN: Sharing-based Euclidean distance Nearest Neighbor query.

This is Algorithm 1 of the paper.  Given the query host's position, the
cached results gathered from peers in communication range (plus the
host's own cache), SENN:

1. sorts the cached results by the distance of their query locations to
   ``Q`` (Heuristic 3.3);
2. runs ``kNN_single`` peer by peer, stopping as soon as ``k`` certain
   neighbors are known;
3. otherwise runs ``kNN_multiple`` over the merged certain region;
4. if the heap is full and the host accepts uncertain answers, returns
   the uncertain set;
5. otherwise forwards the residual query to the server together with the
   branch-expanding bounds and the certified partial result.

The function is pure with respect to the caches (they are snapshots); the
only side effects are on the server's access counters when step 5 runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.geometry.coverage import CoverageMethod
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.core.backend import SpatialBackend
from repro.core.bounds import derive_pruning_bounds
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.verification import verify_multi_peer, verify_single_peer
from repro.obs import OBS

__all__ = ["ResolutionTier", "SennConfig", "SennResult", "senn_query"]


class ResolutionTier(enum.Enum):
    """Which mechanism ultimately answered the query (the SQRR buckets)."""

    LOCAL_CACHE = "local-cache"
    SINGLE_PEER = "single-peer"
    MULTI_PEER = "multi-peer"
    UNCERTAIN = "uncertain-accepted"
    SERVER = "server"


@dataclass(frozen=True)
class SennConfig:
    """Tunable knobs of the SENN pipeline.

    ``transmission_range`` is used by callers (hosts / the simulator) to
    select peers; SENN itself only consumes the resulting cache
    snapshots.  ``coverage_method`` selects the multi-peer verification
    backend (exact disk union vs. the paper's polygonization).
    """

    k: int = 3
    transmission_range: float = 0.125
    cache_capacity: int = 10
    coverage_method: CoverageMethod = CoverageMethod.EXACT
    polygon_sides: int = 32
    accept_uncertain: bool = False
    # Range-query analogue of cache policy 2: when a range query must go
    # to the server, fetch a disk larger by this margin so the cached
    # certain circle can cover peers' (and the host's own) future
    # queries.  Zero keeps the fetch minimal.
    range_overfetch: float = 0.0
    # Extension over cache policy 1: retain the last N query results
    # instead of only the most recent one (1 = the paper's policy).
    cache_history: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.transmission_range < 0.0:
            raise ValueError("transmission_range must be non-negative")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        if self.polygon_sides < 3:
            raise ValueError("polygon_sides must be at least 3")
        if self.range_overfetch < 0.0:
            raise ValueError("range_overfetch must be non-negative")
        if self.cache_history < 1:
            raise ValueError("cache_history must be at least 1")


@dataclass
class SennResult:
    """Outcome of one SENN query.

    ``neighbors`` always holds (at most) the ``k`` the caller asked for.
    When cache policy 2 over-fetched from the server (``server_k > k``),
    the surplus neighbors live in ``prefetched`` -- the full ascending
    server answer -- which is what the host should *cache*; they are not
    part of the caller-visible answer.
    """

    neighbors: List[NeighborResult]
    tier: ResolutionTier
    heap: CandidateHeap
    bounds: PruningBounds
    peers_consulted: int
    server_pages: int = 0
    prefetched: List[NeighborResult] = field(default_factory=list)

    @property
    def cacheable(self) -> List[NeighborResult]:
        """What cache policies 1+2 retain: the over-fetched set if the
        server was consulted with ``server_k > k``, the answer itself
        otherwise."""
        return self.prefetched if self.prefetched else self.neighbors

    @property
    def answered_by_peers(self) -> bool:
        """True when sharing alone resolved the query (no server visit)."""
        return self.tier in (
            ResolutionTier.LOCAL_CACHE,
            ResolutionTier.SINGLE_PEER,
            ResolutionTier.MULTI_PEER,
        )


def senn_query(
    query: Point,
    k: int,
    own_cache: Optional[CachedQueryResult],
    peer_caches: Sequence[CachedQueryResult],
    config: SennConfig,
    server: Optional[SpatialBackend] = None,
    server_k: Optional[int] = None,
) -> SennResult:
    """Run Algorithm 1.

    ``own_cache`` is the host's previous result (verified first; a query
    fully answered by it alone counts as LOCAL_CACHE).  ``peer_caches``
    are snapshots collected over the ad-hoc channel.  When the heap falls
    short and ``server`` is provided, the query is forwarded with bounds;
    ``server_k`` lets the host over-fetch to fill its cache (policy 2 of
    Section 4.1) -- the upper bound is only sound for the original ``k``,
    so over-fetching drops it.

    Without a server, a SERVER-tier result contains whatever certain
    entries were collected (callers treat it as "would need the server").
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    heap = CandidateHeap(k)

    # Heuristic 3.3: closest query locations first.
    usable_own = own_cache is not None and not own_cache.is_empty()
    ordered_caches: List[CachedQueryResult] = sorted(
        [cache for cache in peer_caches if not cache.is_empty()],
        key=lambda cache: query.distance_to(cache.query_location),
    )

    # Step 0: the host's own cache (local answer).
    if usable_own:
        verify_single_peer(query, own_cache, heap)
        if heap.is_complete():
            return _finish(heap, ResolutionTier.LOCAL_CACHE, peers_consulted=0)

    # Step 1: kNN_single, peer by peer.
    consulted = 0
    for cache in ordered_caches:
        consulted += 1
        verify_single_peer(query, cache, heap)
        if heap.is_complete():
            return _finish(heap, ResolutionTier.SINGLE_PEER, consulted)

    # Step 2: kNN_multiple over the merged certain region.
    all_caches = ([own_cache] if usable_own else []) + ordered_caches
    if len(all_caches) >= 2:
        verify_multi_peer(
            query,
            all_caches,
            heap,
            method=config.coverage_method,
            polygon_sides=config.polygon_sides,
        )
        if heap.is_complete():
            return _finish(heap, ResolutionTier.MULTI_PEER, consulted)

    # Step 3: uncertain answer, if acceptable.
    if config.accept_uncertain and heap.is_full:
        return _finish(heap, ResolutionTier.UNCERTAIN, consulted)

    # Step 4: forward to the server with pruning bounds.
    bounds = derive_pruning_bounds(heap)
    certain = [
        NeighborResult(entry.point, entry.payload, entry.distance)
        for entry in heap.certain_entries()
    ]
    if server is None:
        if OBS.enabled:
            OBS.registry.counter(
                "senn.queries", tier=ResolutionTier.SERVER.value
            ).inc()
        return SennResult(certain, ResolutionTier.SERVER, heap, bounds, consulted)

    effective_k = k if server_k is None else max(k, server_k)
    if effective_k > k:
        # The upper bound caps the k-th neighbor only; fetching more NNs
        # than k makes it unsound, so keep just the lower bound.
        bounds = PruningBounds(lower=bounds.lower)
    answer = server.knn_query_detailed(query, effective_k, bounds, certain)
    if OBS.enabled:
        OBS.registry.counter(
            "senn.queries", tier=ResolutionTier.SERVER.value
        ).inc()
    # The caller asked for k neighbors; the over-fetched surplus is cache
    # material only (policy 2), never part of the visible answer.
    return SennResult(
        answer.neighbors[:k],
        ResolutionTier.SERVER,
        heap,
        bounds,
        consulted,
        server_pages=answer.pages.total,
        prefetched=answer.neighbors if effective_k > k else [],
    )


def _finish(
    heap: CandidateHeap, tier: ResolutionTier, peers_consulted: int
) -> SennResult:
    if OBS.enabled:
        OBS.registry.counter("senn.queries", tier=tier.value).inc()
    entries = heap.entries() if tier is ResolutionTier.UNCERTAIN else heap.certain_entries()
    neighbors = [
        NeighborResult(entry.point, entry.payload, entry.distance)
        for entry in entries[: heap.capacity]
    ]
    return SennResult(
        neighbors, tier, heap, derive_pruning_bounds(heap), peers_consulted
    )
