"""The paper's primary contribution: sharing-based NN query processing.

Modules:

- :mod:`repro.core.heap` -- the candidate heap ``H`` (Table 1) holding
  certain and uncertain POIs, with the six states of Section 3.3;
- :mod:`repro.core.cache` -- per-host cached query results and the two
  cache management policies of Section 4.1;
- :mod:`repro.core.verification` -- Lemma 3.2 single-peer verification
  (``kNN_single``) and Lemma 3.8 multi-peer verification
  (``kNN_multiple``);
- :mod:`repro.core.bounds` -- the branch-expanding upper/lower bounds
  derived from the heap state (Section 3.3);
- :mod:`repro.core.senn` -- Algorithm 1, SENN;
- :mod:`repro.core.snnn` -- Algorithm 2, SNNN (network distances);
- :mod:`repro.core.server` -- the remote spatial database server (R*-tree
  + INN/EINN);
- :mod:`repro.core.host` -- the mobile host tying cache, SENN and server
  fallback together.
"""

from repro.core.bounds import derive_pruning_bounds
from repro.core.cache import CachedQueryResult, QueryCache
from repro.core.heap import CandidateHeap, HeapEntry, HeapState
from repro.core.host import MobileHost
from repro.core.naive_sharing import NaiveShareResult, naive_share_query
from repro.core.range_queries import RangeQueryResult, sharing_range_query
from repro.core.senn import ResolutionTier, SennConfig, SennResult, senn_query
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.core.snnn import SnnnResult, snnn_query
from repro.core.verification import verify_multi_peer, verify_single_peer

__all__ = [
    "CachedQueryResult",
    "CandidateHeap",
    "HeapEntry",
    "HeapState",
    "MobileHost",
    "NaiveShareResult",
    "QueryCache",
    "RangeQueryResult",
    "ResolutionTier",
    "SennConfig",
    "SennResult",
    "ServerAlgorithm",
    "SnnnResult",
    "SpatialDatabaseServer",
    "derive_pruning_bounds",
    "naive_share_query",
    "senn_query",
    "sharing_range_query",
    "snnn_query",
    "verify_multi_peer",
    "verify_single_peer",
]
