"""Branch-expanding pruning bounds (Section 3.3).

After ``kNN_single`` and ``kNN_multiple`` leave the heap short of ``k``
certain entries, the heap state determines which bounds can be forwarded
to the server:

===========================  ===========  ===========
Heap state                   upper bound  lower bound
===========================  ===========  ===========
1  full, mixed               last entry   last certain
2  full, only uncertain      last entry   --
3  partial, mixed            --           last certain
4  partial, only certain     --           last certain
5  partial, only uncertain   --           --
6  empty                     --           --
===========================  ===========  ===========

The *upper* bound caps the k-th NN distance (upward pruning of MBRs whose
MINDIST exceeds it); the *lower* bound ``D_ct`` delimits the certain
circle ``C_r`` within which every POI is already known (downward pruning
of MBRs whose MAXDIST falls inside it).
"""

from __future__ import annotations

import math

from repro.core.heap import CandidateHeap, HeapState
from repro.index.knn import PruningBounds
from repro.obs import OBS

__all__ = ["derive_pruning_bounds"]


def derive_pruning_bounds(heap: CandidateHeap) -> PruningBounds:
    """Map the heap state to the paper's pruning bounds.

    A COMPLETE heap never reaches the server, but for uniformity it maps
    to the same bounds as state 1 (both are valid there).
    """
    state = heap.state()
    upper = math.inf
    lower = 0.0
    if state in (HeapState.COMPLETE, HeapState.FULL_MIXED, HeapState.FULL_UNCERTAIN):
        last = heap.last_entry_distance()
        if last is not None:
            upper = last
    if state in (
        HeapState.COMPLETE,
        HeapState.FULL_MIXED,
        HeapState.PARTIAL_MIXED,
        HeapState.PARTIAL_CERTAIN,
    ):
        last_certain = heap.last_certain_distance()
        if last_certain is not None:
            lower = last_certain
    if OBS.enabled:
        OBS.registry.counter("bounds.derived", state=state.value).inc()
    return PruningBounds(lower=lower, upper=upper)
