"""R-tree spatial index with Guttman and R* insertion policies.

The paper's server module indexes POIs "with the well known R*-tree
algorithm" (Section 4.1) using a branching factor of 30 (Section 4.4).
This module implements the full dynamic structure:

- ChooseSubtree with the R*-tree's least-overlap-enlargement rule at the
  level above the leaves;
- OverflowTreatment with forced reinsertion (30 % of entries, reinserted
  closest-first) the first time a level overflows per insertion;
- two split algorithms: Guttman's quadratic split and the R* axis/margin
  split, selectable per tree so the ablation benchmark can compare them;
- STR bulk loading for building large static POI sets quickly;
- window (range) and circle searches with page-access accounting.

kNN search lives in :mod:`repro.index.knn`; it only needs the read-side
interface (``root``, ``read_node``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.runtime import SANITIZER
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vecmath import FloatArray, hypot_pairs
from repro.index.node import ChildEntry, Entry, LeafEntry, Node
from repro.index.pagestats import PageAccessCounter
from repro.obs import OBS

__all__ = ["RTree", "RTreeConfig", "SplitPolicy"]

#: Hoisted ``rtree.node_reads`` counters: [registry, generation, leaf, index].
#: read_node() is the hottest observability site in the tree; the registry
#: lookup (name + label rendering + lock) is paid once per registry
#: generation instead of once per page access.  Each kind's counter is
#: created lazily, exactly when its first read happens — so the set of
#: registered metrics matches the per-call lookup behaviour.
_read_counter_cache: List[Any] = [None, -1, None, None]


def _node_read_counter(is_leaf: bool) -> Any:
    """The ``rtree.node_reads`` counter for the current registry."""
    registry = OBS.registry
    cached = _read_counter_cache
    if cached[0] is not registry or cached[1] != registry.generation:
        cached[0] = registry
        cached[1] = registry.generation
        cached[2] = None
        cached[3] = None
    slot = 2 if is_leaf else 3
    counter = cached[slot]
    if counter is None:
        counter = registry.counter(
            "rtree.node_reads", kind="leaf" if is_leaf else "index"
        )
        cached[slot] = counter
    return counter


class SplitPolicy(enum.Enum):
    """Node split algorithm used on overflow."""

    QUADRATIC = "quadratic"
    RSTAR = "rstar"


@dataclass(frozen=True)
class RTreeConfig:
    """Structural parameters of the tree.

    ``max_entries`` matches the paper's branching factor of 30 by default.
    ``min_fill`` is the usual 40 % fill guarantee.  ``reinsert_fraction``
    is the share of entries evicted by R* forced reinsertion.
    """

    max_entries: int = 30
    min_fill: float = 0.4
    split_policy: SplitPolicy = SplitPolicy.RSTAR
    reinsert_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < self.min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if not 0.0 < self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")

    @property
    def min_entries(self) -> int:
        """Minimum fanout derived from ``min_fill`` (never below 2)."""
        return max(2, int(self.max_entries * self.min_fill))


class RTree:
    """A dynamic R-tree over 2-D points.

    >>> tree = RTree()
    >>> tree.insert(Point(1.0, 2.0), payload="poi-1")
    >>> len(tree)
    1
    """

    def __init__(self, config: Optional[RTreeConfig] = None) -> None:
        self.config = config if config is not None else RTreeConfig()
        self._root = Node(level=0)
        self._size = 0
        self.split_count = 0
        self.reinsert_count = 0
        # STR bulk loading legitimately leaves trailing under-filled nodes;
        # the structural sanitizer relaxes its fill check for such trees.
        self._relaxed_fill = False

    # ------------------------------------------------------------------
    # read-side interface (kNN search uses only these)
    # ------------------------------------------------------------------
    @property
    def root(self) -> Node:
        """The root node (read-only; the tree rebinds it on growth)."""
        return self._root

    @staticmethod
    def read_node(node: Node, counter: Optional[PageAccessCounter]) -> Node:
        """Account one page access and hand the node back.

        This is the single chokepoint every traversal (window, circle,
        INN, EINN, depth-first) reads nodes through, so the global
        ``rtree.node_reads`` counter here sees every simulated page
        access, with or without a per-query ``PageAccessCounter``.

        One *node* visit is one page access, however many of its entries
        the vectorized kernels scan — the whole-node array pass bills
        exactly one read (``record_scan``), keeping the paper's Figure-17
        metric intact while still exposing the scanned entry count.
        """
        if OBS.enabled:
            _node_read_counter(node.is_leaf).inc()
        if counter is not None:
            counter.record_scan(node.page_id, node.is_leaf, len(node.entries))
        return node

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a root leaf)."""
        return self._root.level + 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, point: Point, payload: Any = None) -> None:
        """Insert one point with an opaque payload."""
        self._insert_entry(LeafEntry(point, payload), level=0, reinserted_levels=set())
        self._size += 1
        if SANITIZER.enabled:
            SANITIZER.after_rtree_mutation(self, "insert")

    def delete(self, point: Point, payload: Any = None) -> bool:
        """Remove one entry matching ``point`` (and ``payload``, if given).

        Implements Guttman's CondenseTree: the leaf loses the entry,
        underfull nodes along the path are dissolved and their surviving
        entries reinserted at their original level, and a root with a
        single child is shortened.  Returns False when no match exists.
        """
        found = self._find_leaf_path(self._root, point, payload, [])
        if found is None:
            return False
        path, entry = found
        leaf = path[-1]
        leaf.entries.remove(entry)
        self._size -= 1
        self._condense(path)
        if SANITIZER.enabled:
            # Validates the post-condense structure (MBR shrink, underflow).
            SANITIZER.after_rtree_mutation(self, "delete")
        return True

    def _find_leaf_path(
        self,
        node: Node,
        point: Point,
        payload: Any,
        path: List[Node],
    ) -> Optional[Tuple[List[Node], LeafEntry]]:
        path = path + [node]
        if node.is_leaf:
            for entry in node.entries:
                assert isinstance(entry, LeafEntry)
                if entry.point == point and (payload is None or entry.payload == payload):
                    return path, entry
            return None
        target = BoundingBox.from_point(point)
        for entry in node.entries:
            assert isinstance(entry, ChildEntry)
            if entry.bbox.contains_box(target):
                found = self._find_leaf_path(entry.child, point, payload, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[Node]) -> None:
        """CondenseTree: dissolve underfull nodes bottom-up and reinsert.

        Dissolved subtrees are flattened to their leaf entries before
        reinsertion -- marginally more work than Guttman's same-level
        reinsertion but immune to the empty-root corner cases.
        """
        orphans: List[LeafEntry] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            still_linked = any(
                isinstance(e, ChildEntry) and e.child is node for e in parent.entries
            )
            if not still_linked:
                continue
            if len(node.entries) < self.config.min_entries:
                orphans.extend(_collect_leaf_entries(node))
                parent.entries = [
                    e
                    for e in parent.entries
                    if not (isinstance(e, ChildEntry) and e.child is node)
                ]
            else:
                self._refresh_child_entry(parent, node)
        # Refresh surviving ancestors whose boxes may have shrunk.
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if any(isinstance(e, ChildEntry) and e.child is node for e in parent.entries):
                self._refresh_child_entry(parent, node)
        # Shorten the root before reinserting: it may hold one child (or
        # none, when the whole population is in the orphan list).
        while not self._root.is_leaf and len(self._root.entries) == 1:
            only = self._root.entries[0]
            assert isinstance(only, ChildEntry)
            self._root = only.child
        if not self._root.is_leaf and not self._root.entries:
            self._root = Node(level=0)
        for entry in orphans:
            self._insert_entry(entry, 0, reinserted_levels=set())

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Point, Any]],
        config: Optional[RTreeConfig] = None,
    ) -> "RTree":
        """Build a tree bottom-up with Sort-Tile-Recursive packing.

        STR produces well-shaped static trees in O(n log n); the paper's
        POI sets are static so the server uses this for large inputs.
        """
        tree = cls(config)
        tree._relaxed_fill = True
        if not items:
            return tree
        leaf_entries: List[Entry] = [LeafEntry(p, payload) for p, payload in items]
        level = 0
        entries = leaf_entries
        capacity = tree.config.max_entries
        while len(entries) > capacity:
            nodes = _str_pack(entries, capacity, level)
            entries = [ChildEntry(node.compute_bbox(), node) for node in nodes]
            level += 1
        tree._root = Node(level=level, entries=entries)
        tree._size = len(items)
        if SANITIZER.enabled:
            SANITIZER.after_rtree_mutation(tree, "bulk_load")
        return tree

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(
        self, window: BoundingBox, counter: Optional[PageAccessCounter] = None
    ) -> List[LeafEntry]:
        """All leaf entries whose point lies in the closed ``window``."""
        results: List[LeafEntry] = []
        if self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = self.read_node(stack.pop(), counter)
            if node.is_leaf:
                for entry in node.entries:
                    if window.contains_point(entry.point):  # type: ignore[union-attr]
                        results.append(entry)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    if window.intersects(entry.bbox):
                        stack.append(entry.child)  # type: ignore[union-attr]
        return results

    def circle_search(
        self,
        center: Point,
        radius: float,
        counter: Optional[PageAccessCounter] = None,
    ) -> List[LeafEntry]:
        """All leaf entries within ``radius`` of ``center`` (closed disk)."""
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        results: List[LeafEntry] = []
        if self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = self.read_node(stack.pop(), counter)
            if node.is_leaf:
                for entry in node.entries:
                    if center.distance_to(entry.point) <= radius:  # type: ignore[union-attr]
                        results.append(entry)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    if entry.bbox.mindist(center) <= radius:
                        stack.append(entry.child)  # type: ignore[union-attr]
        return results

    def iter_entries(self) -> Iterator[LeafEntry]:
        """Yield every stored leaf entry (no access accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]

    def node_count(self) -> int:
        """Total number of nodes (pages) in the tree."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]
        return count

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, level: int, reinserted_levels: Set[int]) -> None:
        path = self._choose_path(entry.bbox, level)
        path[-1].entries.append(entry)
        self._propagate_up(path, reinserted_levels)

    def _choose_path(self, bbox: BoundingBox, level: int) -> List[Node]:
        """Descend from the root to a node at ``level``, collecting the path."""
        path = [self._root]
        while path[-1].level > level:
            node = path[-1]
            chosen = self._choose_subtree(node, bbox)
            path.append(chosen.child)
        return path

    def _choose_subtree(self, node: Node, bbox: BoundingBox) -> ChildEntry:
        """Pick the child to descend into, by the R*/Guttman rules.

        All candidate metrics for the node come from one vectorized pass
        over its bound arrays.  Each float equals the scalar formula
        bit-for-bit (exact IEEE min/max/sub/mul; row sums replay the
        scalar left-to-right accumulation), and the final ``min`` over
        key tuples keeps Python's first-wins tie behaviour, so the chosen
        subtree — and hence the whole tree shape — is unchanged.
        """
        entries = node.entries
        arrays = node.arrays()
        lo_x, lo_y = arrays.lo_x, arrays.lo_y
        hi_x, hi_y = arrays.hi_x, arrays.hi_y
        areas = (hi_x - lo_x) * (hi_y - lo_y)
        glo_x = np.minimum(lo_x, bbox.min_x)
        glo_y = np.minimum(lo_y, bbox.min_y)
        ghi_x = np.maximum(hi_x, bbox.max_x)
        ghi_y = np.maximum(hi_y, bbox.max_y)
        enlargements = ((ghi_x - glo_x) * (ghi_y - glo_y) - areas).tolist()
        area_list = areas.tolist()
        count = len(entries)
        use_overlap = (
            self.config.split_policy is SplitPolicy.RSTAR and node.level == 1
        )
        if use_overlap:
            # R* rule for the level above the leaves: minimize overlap
            # enlargement, tie-break on area enlargement, then area.
            grown = _overlap_matrix(glo_x, glo_y, ghi_x, ghi_y, lo_x, lo_y, hi_x, hi_y)
            own = _overlap_matrix(lo_x, lo_y, hi_x, hi_y, lo_x, lo_y, hi_x, hi_y)
            grown_rows = grown.tolist()
            own_rows = own.tolist()
            deltas = []
            for index in range(count):
                grown_row = grown_rows[index]
                own_row = own_rows[index]
                del grown_row[index], own_row[index]
                # sum() replays the scalar `total += ...` add order.
                deltas.append(sum(grown_row) - sum(own_row))
            chosen = min(
                range(count),
                key=lambda i: (deltas[i], enlargements[i], area_list[i]),
            )
        else:
            chosen = min(
                range(count), key=lambda i: (enlargements[i], area_list[i])
            )
        return entries[chosen]  # type: ignore[return-value]

    def _propagate_up(self, path: List[Node], reinserted_levels: Set[int]) -> None:
        """Fix MBRs bottom-up and resolve overflows by reinsert or split."""
        depth = len(path) - 1
        while depth >= 0:
            node = path[depth]
            parent = path[depth - 1] if depth > 0 else None
            if parent is not None:
                self._refresh_child_entry(parent, node)
            if len(node.entries) > self.config.max_entries:
                if (
                    self.config.split_policy is SplitPolicy.RSTAR
                    and parent is not None
                    and node.level not in reinserted_levels
                ):
                    reinserted_levels.add(node.level)
                    self._force_reinsert(path, depth, reinserted_levels)
                    return
                new_node = self._split_node(node)
                self.split_count += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "rtree.splits", policy=self.config.split_policy.value
                    ).inc()
                if parent is None:
                    self._grow_root(node, new_node)
                    return
                self._refresh_child_entry(parent, node)
                parent.entries.append(ChildEntry(new_node.compute_bbox(), new_node))
            depth -= 1

    @staticmethod
    def _refresh_child_entry(parent: Node, child: Node) -> None:
        for entry in parent.entries:
            if isinstance(entry, ChildEntry) and entry.child is child:
                entry.refresh_bbox()
                return
        raise RuntimeError("parent/child relationship broken")

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        self._root = Node(
            level=old_root.level + 1,
            entries=[
                ChildEntry(old_root.compute_bbox(), old_root),
                ChildEntry(sibling.compute_bbox(), sibling),
            ],
        )

    def _force_reinsert(
        self, path: List[Node], depth: int, reinserted_levels: Set[int]
    ) -> None:
        """R* OverflowTreatment: evict the entries farthest from the node
        center and reinsert them (closest first) at the same level."""
        node = path[depth]
        center = node.compute_bbox().center
        cx, cy = _entry_centers(node.entries)
        # One hypot pass for all entry-center distances; the stable index
        # sort reproduces the scalar sorted(key=distance) permutation.
        dists = list(
            map(
                math.hypot,
                [x - center.x for x in cx],
                [y - center.y for y in cy],
            )
        )
        order = sorted(range(len(dists)), key=dists.__getitem__)
        ordered = [node.entries[index] for index in order]
        evict_count = max(1, int(len(ordered) * self.config.reinsert_fraction))
        keep = ordered[: len(ordered) - evict_count]
        orphans = ordered[len(ordered) - evict_count :]
        node.entries = list(keep)
        self.reinsert_count += 1
        if OBS.enabled:
            OBS.registry.counter("rtree.reinserts").inc()
        # Ancestor MBRs must reflect the eviction before reinserting.
        for i in range(depth, 0, -1):
            self._refresh_child_entry(path[i - 1], path[i])
        for orphan in orphans:
            self._insert_entry(orphan, node.level, reinserted_levels)

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def _split_node(self, node: Node) -> Node:
        if self.config.split_policy is SplitPolicy.QUADRATIC:
            group_a, group_b = _split_quadratic(node.entries, self.config.min_entries)
        else:
            group_a, group_b = _split_rstar(node.entries, self.config.min_entries)
        node.entries = group_a
        return Node(level=node.level, entries=group_b)


# ----------------------------------------------------------------------
# vectorized geometry helpers (exact replicas of the scalar formulas)
# ----------------------------------------------------------------------
def _overlap_matrix(
    alo_x: FloatArray,
    alo_y: FloatArray,
    ahi_x: FloatArray,
    ahi_y: FloatArray,
    blo_x: FloatArray,
    blo_y: FloatArray,
    bhi_x: FloatArray,
    bhi_y: FloatArray,
) -> FloatArray:
    """``overlap_area`` for every (A-box, B-box) pair, rows = A boxes.

    Matches ``BoundingBox.overlap_area`` element-wise: intersection
    bounds by exact min/max, 0.0 when disjoint on either axis.
    """
    w = np.minimum(ahi_x[:, None], bhi_x[None, :]) - np.maximum(
        alo_x[:, None], blo_x[None, :]
    )
    h = np.minimum(ahi_y[:, None], bhi_y[None, :]) - np.maximum(
        alo_y[:, None], blo_y[None, :]
    )
    result: FloatArray = np.where((w < 0.0) | (h < 0.0), 0.0, w * h)
    return result


def _entry_bounds(
    entries: Sequence[Entry],
) -> Tuple[FloatArray, FloatArray, FloatArray, FloatArray]:
    """Column bound arrays for a plain entry list (split machinery).

    Leaf entries contribute their degenerate point box, exactly like
    ``LeafEntry.bbox`` — without materializing a ``BoundingBox`` per
    entry per comparison.
    """
    count = len(entries)
    lo_x = np.empty(count, dtype=np.float64)
    lo_y = np.empty(count, dtype=np.float64)
    hi_x = np.empty(count, dtype=np.float64)
    hi_y = np.empty(count, dtype=np.float64)
    for index, entry in enumerate(entries):
        if isinstance(entry, LeafEntry):
            point = entry.point
            lo_x[index] = hi_x[index] = point.x
            lo_y[index] = hi_y[index] = point.y
        else:
            box = entry.bbox
            lo_x[index] = box.min_x
            lo_y[index] = box.min_y
            hi_x[index] = box.max_x
            hi_y[index] = box.max_y
    return lo_x, lo_y, hi_x, hi_y


def _entry_centers(entries: Sequence[Entry]) -> Tuple[List[float], List[float]]:
    """Per-entry MBR center coordinates, as ``bbox.center`` computes them."""
    cx: List[float] = []
    cy: List[float] = []
    for entry in entries:
        if isinstance(entry, LeafEntry):
            point = entry.point
            cx.append((point.x + point.x) / 2.0)
            cy.append((point.y + point.y) / 2.0)
        else:
            box = entry.bbox
            cx.append((box.min_x + box.max_x) / 2.0)
            cy.append((box.min_y + box.max_y) / 2.0)
    return cx, cy


# ----------------------------------------------------------------------
# split algorithms (module-level: they operate on plain entry lists)
# ----------------------------------------------------------------------
def _split_quadratic(
    entries: Sequence[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's quadratic split (PickSeeds/PickNext over bound arrays)."""
    lo_x, lo_y, hi_x, hi_y = _entry_bounds(entries)
    seed_a, seed_b = _pick_seeds_indexed(lo_x, lo_y, hi_x, hi_y)
    remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]
    group_a, group_b = [seed_a], [seed_b]
    bbox_a, bbox_b = entries[seed_a].bbox, entries[seed_b].bbox
    while remaining:
        # Honor the minimum fill guarantee.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        pos, prefer_a = _pick_next_indexed(
            remaining,
            (lo_x, lo_y, hi_x, hi_y),
            bbox_a,
            bbox_b,
            len(group_a),
            len(group_b),
        )
        index = remaining.pop(pos)
        if prefer_a:
            group_a.append(index)
            bbox_a = bbox_a.union(entries[index].bbox)
        else:
            group_b.append(index)
            bbox_b = bbox_b.union(entries[index].bbox)
    return (
        [entries[i] for i in group_a],
        [entries[i] for i in group_b],
    )


def _pick_seeds_indexed(
    lo_x: FloatArray, lo_y: FloatArray, hi_x: FloatArray, hi_y: FloatArray
) -> Tuple[int, int]:
    """PickSeeds over bound arrays: indices of the max-waste pair.

    The full waste matrix computes in one broadcasted pass;
    ``np.argmax`` returns the *first* maximum in row-major order, which
    is exactly the pair the scalar ``i < j`` double loop with a strict
    ``>`` improvement test would keep.
    """
    count = len(lo_x)
    areas = (hi_x - lo_x) * (hi_y - lo_y)
    cw = np.maximum(hi_x[:, None], hi_x[None, :]) - np.minimum(
        lo_x[:, None], lo_x[None, :]
    )
    ch = np.maximum(hi_y[:, None], hi_y[None, :]) - np.minimum(
        lo_y[:, None], lo_y[None, :]
    )
    waste = cw * ch - areas[:, None] - areas[None, :]
    # NaN waste never wins a strict > comparison in the scalar loop;
    # the diagonal and lower triangle are not legal pairs at all.
    waste = np.where(np.isnan(waste), -np.inf, waste)
    waste[np.tril_indices(count)] = -np.inf
    flat = int(np.argmax(waste))
    if waste.flat[flat] == -np.inf:
        return 0, 1
    return divmod(flat, count)


def _pick_next_indexed(
    remaining: Sequence[int],
    bounds: Tuple[FloatArray, FloatArray, FloatArray, FloatArray],
    bbox_a: BoundingBox,
    bbox_b: BoundingBox,
    size_a: int,
    size_b: int,
) -> Tuple[int, bool]:
    """PickNext: position (in ``remaining``) of the strongest preference."""
    lo_x, lo_y, hi_x, hi_y = bounds
    idx = np.fromiter(remaining, np.intp, count=len(remaining))
    rlo_x, rlo_y = lo_x[idx], lo_y[idx]
    rhi_x, rhi_y = hi_x[idx], hi_y[idx]
    d_a = (
        np.maximum(rhi_x, bbox_a.max_x) - np.minimum(rlo_x, bbox_a.min_x)
    ) * (
        np.maximum(rhi_y, bbox_a.max_y) - np.minimum(rlo_y, bbox_a.min_y)
    ) - bbox_a.area
    d_b = (
        np.maximum(rhi_x, bbox_b.max_x) - np.minimum(rlo_x, bbox_b.min_x)
    ) * (
        np.maximum(rhi_y, bbox_b.max_y) - np.minimum(rlo_y, bbox_b.min_y)
    ) - bbox_b.area
    diff = np.abs(d_a - d_b)
    pos = int(np.argmax(np.where(np.isnan(diff), -np.inf, diff)))
    best_a = float(d_a[pos])
    best_b = float(d_b[pos])
    if best_a != best_b:
        prefer_a = best_a < best_b
    elif bbox_a.area != bbox_b.area:
        prefer_a = bbox_a.area < bbox_b.area
    else:
        prefer_a = size_a <= size_b
    return pos, prefer_a


def _split_rstar(
    entries: Sequence[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """R* split: choose the axis with minimal margin sum, then the
    distribution with minimal overlap (tie-break on combined area).

    All four candidate orderings and every candidate distribution are
    evaluated on prefix/suffix min-max accumulations of the bound
    arrays.  min/max are exact and order-independent, the margin and
    area arithmetic replays the scalar grouping, and the selection
    loops keep the scalar first-wins strict-improvement semantics, so
    the chosen split is identical entry-for-entry.
    """
    count = len(entries)
    lo_x, lo_y, hi_x, hi_y = _entry_bounds(entries)
    lo_slice = slice(min_entries - 1, count - min_entries)
    hi_slice = slice(min_entries, count - min_entries + 1)

    best_margin = math.inf
    best: Optional[Tuple[FloatArray, ...]] = None
    # Axis candidates in the scalar visit order: x-lower, x-upper,
    # y-lower, y-upper.
    for sort_key in (lo_x, hi_x, lo_y, hi_y):
        perm = np.argsort(sort_key, kind="stable")
        slo_x, slo_y = lo_x[perm], lo_y[perm]
        shi_x, shi_y = hi_x[perm], hi_y[perm]
        plo_x = np.minimum.accumulate(slo_x)
        plo_y = np.minimum.accumulate(slo_y)
        phi_x = np.maximum.accumulate(shi_x)
        phi_y = np.maximum.accumulate(shi_y)
        qlo_x = np.minimum.accumulate(slo_x[::-1])[::-1]
        qlo_y = np.minimum.accumulate(slo_y[::-1])[::-1]
        qhi_x = np.maximum.accumulate(shi_x[::-1])[::-1]
        qhi_y = np.maximum.accumulate(shi_y[::-1])[::-1]
        margin_a = (phi_x[lo_slice] - plo_x[lo_slice]) + (
            phi_y[lo_slice] - plo_y[lo_slice]
        )
        margin_b = (qhi_x[hi_slice] - qlo_x[hi_slice]) + (
            qhi_y[hi_slice] - qlo_y[hi_slice]
        )
        # sum() replays the scalar `total += margin_a + margin_b` order.
        margin = sum((margin_a + margin_b).tolist())
        if margin < best_margin:
            best_margin = margin
            best = (perm, plo_x, plo_y, phi_x, phi_y, qlo_x, qlo_y, qhi_x, qhi_y)
    assert best is not None
    perm, plo_x, plo_y, phi_x, phi_y, qlo_x, qlo_y, qhi_x, qhi_y = best

    olo_x = np.maximum(plo_x[lo_slice], qlo_x[hi_slice])
    olo_y = np.maximum(plo_y[lo_slice], qlo_y[hi_slice])
    ohi_x = np.minimum(phi_x[lo_slice], qhi_x[hi_slice])
    ohi_y = np.minimum(phi_y[lo_slice], qhi_y[hi_slice])
    w = ohi_x - olo_x
    h = ohi_y - olo_y
    overlaps = np.where((w < 0.0) | (h < 0.0), 0.0, w * h)
    area_a = (phi_x[lo_slice] - plo_x[lo_slice]) * (phi_y[lo_slice] - plo_y[lo_slice])
    area_b = (qhi_x[hi_slice] - qlo_x[hi_slice]) * (qhi_y[hi_slice] - qlo_y[hi_slice])
    area_sums = area_a + area_b

    best_split = min_entries
    best_key = (math.inf, math.inf)
    for offset, key in enumerate(zip(overlaps.tolist(), area_sums.tolist())):
        if key < best_key:
            best_key = key
            best_split = min_entries + offset
    ordered = [entries[i] for i in perm.tolist()]
    return ordered[:best_split], ordered[best_split:]


def _collect_leaf_entries(node: Node) -> List[LeafEntry]:
    """Flatten a subtree to its stored leaf entries."""
    collected: List[LeafEntry] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            collected.extend(current.entries)  # type: ignore[arg-type]
        else:
            stack.extend(
                entry.child  # type: ignore[union-attr]
                for entry in current.entries
            )
    return collected


def _str_pack(entries: List[Entry], capacity: int, level: int) -> List[Node]:
    """One level of Sort-Tile-Recursive packing.

    Sort keys (MBR centers) come from one pass over the entry list
    instead of a ``BoundingBox``/``Point`` construction per key; the
    index sorts are stable like the scalar entry sorts, so tiles are
    identical.
    """
    count = len(entries)
    node_count = math.ceil(count / capacity)
    slice_count = math.ceil(math.sqrt(node_count))
    cx, cy = _entry_centers(entries)
    by_x = sorted(range(count), key=cx.__getitem__)
    slice_size = math.ceil(count / slice_count)
    nodes: List[Node] = []
    for i in range(0, count, slice_size):
        vertical = sorted(by_x[i : i + slice_size], key=cy.__getitem__)
        for j in range(0, len(vertical), capacity):
            nodes.append(
                Node(
                    level=level,
                    entries=[entries[t] for t in vertical[j : j + capacity]],
                )
            )
    return nodes
