"""R-tree spatial index with Guttman and R* insertion policies.

The paper's server module indexes POIs "with the well known R*-tree
algorithm" (Section 4.1) using a branching factor of 30 (Section 4.4).
This module implements the full dynamic structure:

- ChooseSubtree with the R*-tree's least-overlap-enlargement rule at the
  level above the leaves;
- OverflowTreatment with forced reinsertion (30 % of entries, reinserted
  closest-first) the first time a level overflows per insertion;
- two split algorithms: Guttman's quadratic split and the R* axis/margin
  split, selectable per tree so the ablation benchmark can compare them;
- STR bulk loading for building large static POI sets quickly;
- window (range) and circle searches with page-access accounting.

kNN search lives in :mod:`repro.index.knn`; it only needs the read-side
interface (``root``, ``read_node``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.runtime import SANITIZER
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.node import ChildEntry, Entry, LeafEntry, Node
from repro.index.pagestats import PageAccessCounter
from repro.obs import OBS

__all__ = ["RTree", "RTreeConfig", "SplitPolicy"]


class SplitPolicy(enum.Enum):
    """Node split algorithm used on overflow."""

    QUADRATIC = "quadratic"
    RSTAR = "rstar"


@dataclass(frozen=True)
class RTreeConfig:
    """Structural parameters of the tree.

    ``max_entries`` matches the paper's branching factor of 30 by default.
    ``min_fill`` is the usual 40 % fill guarantee.  ``reinsert_fraction``
    is the share of entries evicted by R* forced reinsertion.
    """

    max_entries: int = 30
    min_fill: float = 0.4
    split_policy: SplitPolicy = SplitPolicy.RSTAR
    reinsert_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < self.min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if not 0.0 < self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")

    @property
    def min_entries(self) -> int:
        """Minimum fanout derived from ``min_fill`` (never below 2)."""
        return max(2, int(self.max_entries * self.min_fill))


class RTree:
    """A dynamic R-tree over 2-D points.

    >>> tree = RTree()
    >>> tree.insert(Point(1.0, 2.0), payload="poi-1")
    >>> len(tree)
    1
    """

    def __init__(self, config: Optional[RTreeConfig] = None) -> None:
        self.config = config if config is not None else RTreeConfig()
        self._root = Node(level=0)
        self._size = 0
        self.split_count = 0
        self.reinsert_count = 0
        # STR bulk loading legitimately leaves trailing under-filled nodes;
        # the structural sanitizer relaxes its fill check for such trees.
        self._relaxed_fill = False

    # ------------------------------------------------------------------
    # read-side interface (kNN search uses only these)
    # ------------------------------------------------------------------
    @property
    def root(self) -> Node:
        """The root node (read-only; the tree rebinds it on growth)."""
        return self._root

    @staticmethod
    def read_node(node: Node, counter: Optional[PageAccessCounter]) -> Node:
        """Account one page access and hand the node back.

        This is the single chokepoint every traversal (window, circle,
        INN, EINN, depth-first) reads nodes through, so the global
        ``rtree.node_reads`` counter here sees every simulated page
        access, with or without a per-query ``PageAccessCounter``.
        """
        if OBS.enabled:
            OBS.registry.counter(
                "rtree.node_reads", kind="leaf" if node.is_leaf else "index"
            ).inc()
        if counter is not None:
            counter.record(node.page_id, node.is_leaf)
        return node

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a root leaf)."""
        return self._root.level + 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, point: Point, payload: Any = None) -> None:
        """Insert one point with an opaque payload."""
        self._insert_entry(LeafEntry(point, payload), level=0, reinserted_levels=set())
        self._size += 1
        if SANITIZER.enabled:
            SANITIZER.after_rtree_mutation(self, "insert")

    def delete(self, point: Point, payload: Any = None) -> bool:
        """Remove one entry matching ``point`` (and ``payload``, if given).

        Implements Guttman's CondenseTree: the leaf loses the entry,
        underfull nodes along the path are dissolved and their surviving
        entries reinserted at their original level, and a root with a
        single child is shortened.  Returns False when no match exists.
        """
        found = self._find_leaf_path(self._root, point, payload, [])
        if found is None:
            return False
        path, entry = found
        leaf = path[-1]
        leaf.entries.remove(entry)
        self._size -= 1
        self._condense(path)
        if SANITIZER.enabled:
            # Validates the post-condense structure (MBR shrink, underflow).
            SANITIZER.after_rtree_mutation(self, "delete")
        return True

    def _find_leaf_path(
        self,
        node: Node,
        point: Point,
        payload: Any,
        path: List[Node],
    ) -> Optional[Tuple[List[Node], LeafEntry]]:
        path = path + [node]
        if node.is_leaf:
            for entry in node.entries:
                assert isinstance(entry, LeafEntry)
                if entry.point == point and (payload is None or entry.payload == payload):
                    return path, entry
            return None
        target = BoundingBox.from_point(point)
        for entry in node.entries:
            assert isinstance(entry, ChildEntry)
            if entry.bbox.contains_box(target):
                found = self._find_leaf_path(entry.child, point, payload, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[Node]) -> None:
        """CondenseTree: dissolve underfull nodes bottom-up and reinsert.

        Dissolved subtrees are flattened to their leaf entries before
        reinsertion -- marginally more work than Guttman's same-level
        reinsertion but immune to the empty-root corner cases.
        """
        orphans: List[LeafEntry] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            still_linked = any(
                isinstance(e, ChildEntry) and e.child is node for e in parent.entries
            )
            if not still_linked:
                continue
            if len(node.entries) < self.config.min_entries:
                orphans.extend(_collect_leaf_entries(node))
                parent.entries = [
                    e
                    for e in parent.entries
                    if not (isinstance(e, ChildEntry) and e.child is node)
                ]
            else:
                self._refresh_child_entry(parent, node)
        # Refresh surviving ancestors whose boxes may have shrunk.
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if any(isinstance(e, ChildEntry) and e.child is node for e in parent.entries):
                self._refresh_child_entry(parent, node)
        # Shorten the root before reinserting: it may hold one child (or
        # none, when the whole population is in the orphan list).
        while not self._root.is_leaf and len(self._root.entries) == 1:
            only = self._root.entries[0]
            assert isinstance(only, ChildEntry)
            self._root = only.child
        if not self._root.is_leaf and not self._root.entries:
            self._root = Node(level=0)
        for entry in orphans:
            self._insert_entry(entry, 0, reinserted_levels=set())

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Point, Any]],
        config: Optional[RTreeConfig] = None,
    ) -> "RTree":
        """Build a tree bottom-up with Sort-Tile-Recursive packing.

        STR produces well-shaped static trees in O(n log n); the paper's
        POI sets are static so the server uses this for large inputs.
        """
        tree = cls(config)
        tree._relaxed_fill = True
        if not items:
            return tree
        leaf_entries: List[Entry] = [LeafEntry(p, payload) for p, payload in items]
        level = 0
        entries = leaf_entries
        capacity = tree.config.max_entries
        while len(entries) > capacity:
            nodes = _str_pack(entries, capacity, level)
            entries = [ChildEntry(node.compute_bbox(), node) for node in nodes]
            level += 1
        tree._root = Node(level=level, entries=entries)
        tree._size = len(items)
        if SANITIZER.enabled:
            SANITIZER.after_rtree_mutation(tree, "bulk_load")
        return tree

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(
        self, window: BoundingBox, counter: Optional[PageAccessCounter] = None
    ) -> List[LeafEntry]:
        """All leaf entries whose point lies in the closed ``window``."""
        results: List[LeafEntry] = []
        if self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = self.read_node(stack.pop(), counter)
            if node.is_leaf:
                for entry in node.entries:
                    if window.contains_point(entry.point):  # type: ignore[union-attr]
                        results.append(entry)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    if window.intersects(entry.bbox):
                        stack.append(entry.child)  # type: ignore[union-attr]
        return results

    def circle_search(
        self,
        center: Point,
        radius: float,
        counter: Optional[PageAccessCounter] = None,
    ) -> List[LeafEntry]:
        """All leaf entries within ``radius`` of ``center`` (closed disk)."""
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        results: List[LeafEntry] = []
        if self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = self.read_node(stack.pop(), counter)
            if node.is_leaf:
                for entry in node.entries:
                    if center.distance_to(entry.point) <= radius:  # type: ignore[union-attr]
                        results.append(entry)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    if entry.bbox.mindist(center) <= radius:
                        stack.append(entry.child)  # type: ignore[union-attr]
        return results

    def iter_entries(self) -> Iterator[LeafEntry]:
        """Yield every stored leaf entry (no access accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]

    def node_count(self) -> int:
        """Total number of nodes (pages) in the tree."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]
        return count

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, level: int, reinserted_levels: Set[int]) -> None:
        path = self._choose_path(entry.bbox, level)
        path[-1].entries.append(entry)
        self._propagate_up(path, reinserted_levels)

    def _choose_path(self, bbox: BoundingBox, level: int) -> List[Node]:
        """Descend from the root to a node at ``level``, collecting the path."""
        path = [self._root]
        while path[-1].level > level:
            node = path[-1]
            chosen = self._choose_subtree(node, bbox)
            path.append(chosen.child)
        return path

    def _choose_subtree(self, node: Node, bbox: BoundingBox) -> ChildEntry:
        entries: List[ChildEntry] = node.entries  # type: ignore[assignment]
        use_overlap = (
            self.config.split_policy is SplitPolicy.RSTAR and node.level == 1
        )
        if use_overlap:
            # R* rule for the level above the leaves: minimize overlap
            # enlargement, tie-break on area enlargement, then area.
            def overlap_with_others(candidate: ChildEntry, grown: BoundingBox) -> float:
                total = 0.0
                for other in entries:
                    if other is candidate:
                        continue
                    total += grown.overlap_area(other.bbox)
                return total

            def key(candidate: ChildEntry) -> Tuple[float, float, float]:
                grown = candidate.bbox.union(bbox)
                overlap_delta = overlap_with_others(candidate, grown) - overlap_with_others(
                    candidate, candidate.bbox
                )
                return (
                    overlap_delta,
                    candidate.bbox.enlargement(bbox),
                    candidate.bbox.area,
                )

            return min(entries, key=key)

        def area_key(candidate: ChildEntry) -> Tuple[float, float]:
            return (candidate.bbox.enlargement(bbox), candidate.bbox.area)

        return min(entries, key=area_key)

    def _propagate_up(self, path: List[Node], reinserted_levels: Set[int]) -> None:
        """Fix MBRs bottom-up and resolve overflows by reinsert or split."""
        depth = len(path) - 1
        while depth >= 0:
            node = path[depth]
            parent = path[depth - 1] if depth > 0 else None
            if parent is not None:
                self._refresh_child_entry(parent, node)
            if len(node.entries) > self.config.max_entries:
                if (
                    self.config.split_policy is SplitPolicy.RSTAR
                    and parent is not None
                    and node.level not in reinserted_levels
                ):
                    reinserted_levels.add(node.level)
                    self._force_reinsert(path, depth, reinserted_levels)
                    return
                new_node = self._split_node(node)
                self.split_count += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "rtree.splits", policy=self.config.split_policy.value
                    ).inc()
                if parent is None:
                    self._grow_root(node, new_node)
                    return
                self._refresh_child_entry(parent, node)
                parent.entries.append(ChildEntry(new_node.compute_bbox(), new_node))
            depth -= 1

    @staticmethod
    def _refresh_child_entry(parent: Node, child: Node) -> None:
        for entry in parent.entries:
            if isinstance(entry, ChildEntry) and entry.child is child:
                entry.refresh_bbox()
                return
        raise RuntimeError("parent/child relationship broken")

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        self._root = Node(
            level=old_root.level + 1,
            entries=[
                ChildEntry(old_root.compute_bbox(), old_root),
                ChildEntry(sibling.compute_bbox(), sibling),
            ],
        )

    def _force_reinsert(
        self, path: List[Node], depth: int, reinserted_levels: Set[int]
    ) -> None:
        """R* OverflowTreatment: evict the entries farthest from the node
        center and reinsert them (closest first) at the same level."""
        node = path[depth]
        center = node.compute_bbox().center
        ordered = sorted(
            node.entries,
            key=lambda entry: entry.bbox.center.distance_to(center),
        )
        evict_count = max(1, int(len(ordered) * self.config.reinsert_fraction))
        keep = ordered[: len(ordered) - evict_count]
        orphans = ordered[len(ordered) - evict_count :]
        node.entries = list(keep)
        self.reinsert_count += 1
        if OBS.enabled:
            OBS.registry.counter("rtree.reinserts").inc()
        # Ancestor MBRs must reflect the eviction before reinserting.
        for i in range(depth, 0, -1):
            self._refresh_child_entry(path[i - 1], path[i])
        for orphan in orphans:
            self._insert_entry(orphan, node.level, reinserted_levels)

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def _split_node(self, node: Node) -> Node:
        if self.config.split_policy is SplitPolicy.QUADRATIC:
            group_a, group_b = _split_quadratic(node.entries, self.config.min_entries)
        else:
            group_a, group_b = _split_rstar(node.entries, self.config.min_entries)
        node.entries = group_a
        return Node(level=node.level, entries=group_b)


# ----------------------------------------------------------------------
# split algorithms (module-level: they operate on plain entry lists)
# ----------------------------------------------------------------------
def _split_quadratic(
    entries: Sequence[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's quadratic split."""
    remaining = list(entries)
    seed_a, seed_b = _pick_seeds(remaining)
    remaining.remove(seed_a)
    remaining.remove(seed_b)
    group_a, group_b = [seed_a], [seed_b]
    bbox_a, bbox_b = seed_a.bbox, seed_b.bbox
    while remaining:
        # Honor the minimum fill guarantee.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        entry, prefer_a = _pick_next(remaining, bbox_a, bbox_b, len(group_a), len(group_b))
        remaining.remove(entry)
        if prefer_a:
            group_a.append(entry)
            bbox_a = bbox_a.union(entry.bbox)
        else:
            group_b.append(entry)
            bbox_b = bbox_b.union(entry.bbox)
    return group_a, group_b


def _pick_seeds(entries: Sequence[Entry]) -> Tuple[Entry, Entry]:
    """The pair wasting the most area when grouped together."""
    best_pair = (entries[0], entries[1])
    best_waste = -math.inf
    count = len(entries)
    for i in range(count):
        for j in range(i + 1, count):
            combined = entries[i].bbox.union(entries[j].bbox)
            waste = combined.area - entries[i].bbox.area - entries[j].bbox.area
            if waste > best_waste:
                best_waste = waste
                best_pair = (entries[i], entries[j])
    return best_pair


def _pick_next(
    remaining: Sequence[Entry],
    bbox_a: BoundingBox,
    bbox_b: BoundingBox,
    size_a: int,
    size_b: int,
) -> Tuple[Entry, bool]:
    """The entry with the strongest group preference, and that preference."""
    best_entry = remaining[0]
    best_diff = -1.0
    for entry in remaining:
        d_a = bbox_a.enlargement(entry.bbox)
        d_b = bbox_b.enlargement(entry.bbox)
        diff = abs(d_a - d_b)
        if diff > best_diff:
            best_diff = diff
            best_entry = entry
    d_a = bbox_a.enlargement(best_entry.bbox)
    d_b = bbox_b.enlargement(best_entry.bbox)
    if d_a != d_b:
        prefer_a = d_a < d_b
    elif bbox_a.area != bbox_b.area:
        prefer_a = bbox_a.area < bbox_b.area
    else:
        prefer_a = size_a <= size_b
    return best_entry, prefer_a


def _split_rstar(
    entries: Sequence[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """R* split: choose the axis with minimal margin sum, then the
    distribution with minimal overlap (tie-break on combined area)."""
    best_axis_entries: Optional[List[Entry]] = None
    best_axis_margin = math.inf
    for axis in ("x", "y"):
        for bound in ("lower", "upper"):
            ordered = sorted(entries, key=_axis_key(axis, bound))
            margin = _margin_sum(ordered, min_entries)
            if margin < best_axis_margin:
                best_axis_margin = margin
                best_axis_entries = ordered
    assert best_axis_entries is not None
    ordered = best_axis_entries
    best_split = min_entries
    best_key = (math.inf, math.inf)
    for split_at in range(min_entries, len(ordered) - min_entries + 1):
        bbox_a = BoundingBox.union_all(e.bbox for e in ordered[:split_at])
        bbox_b = BoundingBox.union_all(e.bbox for e in ordered[split_at:])
        key = (bbox_a.overlap_area(bbox_b), bbox_a.area + bbox_b.area)
        if key < best_key:
            best_key = key
            best_split = split_at
    return list(ordered[:best_split]), list(ordered[best_split:])


def _axis_key(axis: str, bound: str) -> Callable[[Entry], float]:
    if axis == "x":
        return (lambda e: e.bbox.min_x) if bound == "lower" else (lambda e: e.bbox.max_x)
    return (lambda e: e.bbox.min_y) if bound == "lower" else (lambda e: e.bbox.max_y)


def _margin_sum(ordered: Sequence[Entry], min_entries: int) -> float:
    total = 0.0
    for split_at in range(min_entries, len(ordered) - min_entries + 1):
        bbox_a = BoundingBox.union_all(e.bbox for e in ordered[:split_at])
        bbox_b = BoundingBox.union_all(e.bbox for e in ordered[split_at:])
        total += bbox_a.margin + bbox_b.margin
    return total


def _collect_leaf_entries(node: Node) -> List[LeafEntry]:
    """Flatten a subtree to its stored leaf entries."""
    collected: List[LeafEntry] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            collected.extend(current.entries)  # type: ignore[arg-type]
        else:
            stack.extend(
                entry.child  # type: ignore[union-attr]
                for entry in current.entries
            )
    return collected


def _str_pack(entries: List[Entry], capacity: int, level: int) -> List[Node]:
    """One level of Sort-Tile-Recursive packing."""
    count = len(entries)
    node_count = math.ceil(count / capacity)
    slice_count = math.ceil(math.sqrt(node_count))
    by_x = sorted(entries, key=lambda e: e.bbox.center.x)
    slice_size = math.ceil(count / slice_count)
    nodes: List[Node] = []
    for i in range(0, count, slice_size):
        vertical = sorted(by_x[i : i + slice_size], key=lambda e: e.bbox.center.y)
        for j in range(0, len(vertical), capacity):
            nodes.append(Node(level=level, entries=vertical[j : j + capacity]))
    return nodes
