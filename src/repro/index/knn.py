"""Nearest-neighbor search over the R-tree.

Three algorithms, matching the paper's Section 2/3.3/4.4 cast:

- :func:`incremental_nearest` -- the best-first *incremental* NN algorithm
  of Hjaltason & Samet (the paper's INN).  It maintains a priority queue
  of nodes and objects ordered by MINDIST and reports neighbors in
  ascending distance order, visiting only the minimally necessary nodes;
- :func:`k_nearest_depth_first` -- the depth-first branch-and-bound
  algorithm of Roussopoulos et al., kept as the classic baseline;
- :func:`k_nearest_einn` -- the paper's *extended* INN (EINN): INN plus
  the two pruning rules of Section 3.3 driven by client-supplied
  :class:`PruningBounds`:

  1. *downward pruning*: any MBR whose MAXDIST to the query point is
     smaller than the branch-expanding lower bound is skipped -- every
     object in it lies inside the client's certain circle ``C_r`` and is
     already known;
  2. *upward pruning*: any MBR whose MINDIST exceeds the branch-expanding
     upper bound (or the running k-th candidate distance) is discarded.

All algorithms account page accesses through an optional
:class:`~repro.index.pagestats.PageAccessCounter`.

Tie-breaking: POIs at exactly equal distance are ordered by
:func:`poi_tie_key` (numeric payloads numerically, everything else by its
string form), so INN, EINN and the depth-first baseline return the *same*
neighbors in the same order even on duplicate-distance inputs.  The
differential harness in :mod:`repro.testing` depends on this.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.vecmath import (
    maxdist_arrays,
    mindist_arrays,
    point_distance_list,
)
from repro.index.node import LeafEntry, Node
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree
from repro.obs import OBS

__all__ = [
    "NeighborResult",
    "PruningBounds",
    "incremental_nearest",
    "k_nearest",
    "k_nearest_depth_first",
    "k_nearest_einn",
    "poi_tie_key",
]

#: Total order on POI payloads for breaking exact distance ties.
TieKey = Tuple[int, float, str]

#: Sorts before every payload tie key: nodes at the same heap distance are
#: expanded before equal-distance objects are reported, so an MBR touching
#: the current k-th distance can still contribute a better-tie neighbor.
_NODE_TIE: TieKey = (0, 0.0, "")

#: Sorts after every payload tie key (used as an "unbounded" cut).
_MAX_TIE: TieKey = (3, 0.0, "")

_MAX_CUT: Tuple[float, TieKey] = (math.inf, _MAX_TIE)


def poi_tie_key(payload: Any) -> TieKey:
    """Deterministic total order on payloads, stable by POI id.

    Numeric ids sort numerically, all other payloads by ``str()``; the two
    classes never interleave.  Every kNN algorithm in this module breaks
    equal-distance ties with this key, which is what makes their results
    comparable in differential tests.
    """
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return (1, float(payload), "")
    return (2, 0.0, str(payload))


@dataclass(frozen=True, slots=True)
class NeighborResult:
    """One reported neighbor: its location, payload and distance."""

    point: Point
    payload: Any
    distance: float


@dataclass(frozen=True, slots=True)
class PruningBounds:
    """Branch-expanding bounds derived from the client's candidate heap.

    ``lower`` is ``D_ct`` -- the distance of the last *certain* entry; all
    POIs strictly inside that radius are already known to the client.
    ``upper`` is the distance of the heap's last entry when the heap is
    full; the true k-th NN cannot be farther.  Either bound may be absent
    (``0.0`` / ``inf``), matching heap states 1-6 of Section 3.3.
    """

    lower: float = 0.0
    upper: float = math.inf

    def __post_init__(self) -> None:
        if self.lower < 0.0:
            raise ValueError("lower bound must be non-negative")
        if self.upper < 0.0:
            raise ValueError("upper bound must be non-negative")

    @property
    def has_lower(self) -> bool:
        """True when the client supplied a non-trivial lower bound."""
        return self.lower > 0.0

    @property
    def has_upper(self) -> bool:
        """True when the client supplied a finite upper bound."""
        return math.isfinite(self.upper)


class _LeafBlock:
    """One leaf node's entries as a lazily merged sorted run.

    The scalar algorithm pushed every leaf entry onto the priority queue
    individually.  The vectorized expansion computes all entry distances
    in one pass, sorts the entries by the exact per-entry heap key
    ``(distance, tie_key, insertion_order)`` and pushes only the head;
    each pop re-pushes the successor.  Because the run is sorted by the
    *same total key* the individual pushes used (insertion orders are
    globally unique, so the key is a total order), the heap's pop
    sequence — and therefore every traversal decision and page access —
    is identical to the scalar merge.
    """

    __slots__ = ("items", "pos")

    def __init__(self, items: List[Tuple[float, TieKey, int, LeafEntry]]) -> None:
        self.items = items
        self.pos = 0

    def advance(self, heap: List[Tuple[float, TieKey, int, Any]]) -> LeafEntry:
        """Consume the head entry, scheduling the successor on ``heap``."""
        items = self.items
        pos = self.pos
        entry = items[pos][3]
        succ = pos + 1
        self.pos = succ
        if succ < len(items):
            dist, tie, order, _ = items[succ]
            heapq.heappush(heap, (dist, tie, order, self))
        return entry


def _leaf_columns(
    node: Node, query: Point
) -> Tuple[List[float], List[TieKey]]:
    """Distances and memoized tie keys for one leaf, in entry order."""
    arrays = node.arrays()
    dists = point_distance_list(query.x, query.y, arrays.xs, arrays.ys)
    ties = arrays.tie_keys
    if ties is None:
        ties = [poi_tie_key(payload) for payload in arrays.payloads]
        arrays.tie_keys = ties
    return dists, ties


def incremental_nearest(
    tree: RTree,
    query: Point,
    counter: Optional[PageAccessCounter] = None,
) -> Iterator[NeighborResult]:
    """Yield neighbors of ``query`` in ascending distance order (INN).

    The generator is lazy: callers pull exactly as many neighbors as they
    need, which is what the SNNN algorithm's incremental expansion relies
    on.
    """
    if len(tree) == 0:
        return
    tiebreak = itertools.count()
    # Heap items: (distance, tie_key, insertion_order, node_or_leaf_block)
    heap: List[Tuple[float, TieKey, int, Any]] = []
    root = tree.read_node(tree.root, counter)
    _expand_into_heap(root, query, heap, tiebreak)
    while heap:
        dist, _, _, item = heapq.heappop(heap)
        if type(item) is _LeafBlock:
            entry = item.advance(heap)
            yield NeighborResult(entry.point, entry.payload, dist)
        else:
            node = tree.read_node(item, counter)
            _expand_into_heap(node, query, heap, tiebreak)


def _expand_into_heap(
    node: Node,
    query: Point,
    heap: List[Tuple[float, TieKey, int, Any]],
    tiebreak: "itertools.count[int]",
) -> None:
    if node.is_leaf:
        dists, ties = _leaf_columns(node, query)
        items = [
            (dist, tie, next(tiebreak), entry)
            for dist, tie, entry in zip(dists, ties, node.entries)
        ]
        if items:
            items.sort()
            head = items[0]
            heapq.heappush(heap, (head[0], head[1], head[2], _LeafBlock(items)))
    else:
        arrays = node.arrays()
        mindists = mindist_arrays(
            query.x, query.y, arrays.lo_x, arrays.lo_y, arrays.hi_x, arrays.hi_y
        ).tolist()
        for dist, child in zip(mindists, arrays.children):
            heapq.heappush(heap, (dist, _NODE_TIE, next(tiebreak), child))


def k_nearest(
    tree: RTree,
    query: Point,
    k: int,
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """The k nearest neighbors in ascending distance order, via INN."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return list(itertools.islice(incremental_nearest(tree, query, counter), k))


def k_nearest_depth_first(
    tree: RTree,
    query: Point,
    k: int,
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """Depth-first branch-and-bound kNN (Roussopoulos et al.).

    Kept as the classical single-step baseline; visits at least as many
    nodes as best-first search.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 or len(tree) == 0:
        return []
    # Best k candidates so far, ascending by (distance, tie_key).
    best: List[Tuple[Tuple[float, TieKey], LeafEntry]] = []

    def kth_cut() -> Tuple[float, TieKey]:
        return best[k - 1][0] if len(best) == k else _MAX_CUT

    def visit(node: Node) -> None:
        tree.read_node(node, counter)
        if node.is_leaf:
            for entry in node.entries:
                dist = query.distance_to(entry.point)  # type: ignore[union-attr]
                key = (dist, poi_tie_key(entry.payload))
                if key < kth_cut():
                    index = bisect.bisect_right(best, key, key=lambda item: item[0])
                    best.insert(index, (key, entry))
                    del best[k:]
        else:
            branches = sorted(
                node.entries, key=lambda entry: entry.bbox.mindist(query)
            )
            for entry in branches:
                # A node whose MINDIST equals the current k-th distance may
                # still hold an equal-distance entry with a better tie key,
                # so the cut uses the node tie (which sorts first).
                if (entry.bbox.mindist(query), _NODE_TIE) < kth_cut():
                    visit(entry.child)  # type: ignore[union-attr]

    visit(tree.root)
    return [
        NeighborResult(entry.point, entry.payload, key[0]) for key, entry in best
    ]


def k_nearest_einn(
    tree: RTree,
    query: Point,
    k: int,
    bounds: PruningBounds = PruningBounds(),
    known_certain: Sequence[NeighborResult] = (),
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """EINN: best-first kNN with the paper's pruning bounds.

    ``known_certain`` holds the POIs the client already verified (those
    whose distance is below ``bounds.lower`` plus any other certain
    entries).  They occupy result slots and let the search skip MBRs that
    are entirely inside the certain circle ``C_r``.

    Returns the global top-k (client knowledge merged with server finds),
    in ascending distance order.  With default bounds and no known
    results, EINN degenerates to plain INN.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return []

    results: List[NeighborResult] = sorted(
        known_certain, key=lambda r: (r.distance, poi_tie_key(r.payload))
    )
    known_keys = {_result_key(r) for r in results}

    def kth_cut() -> Tuple[float, TieKey]:
        # The client's upper bound caps the k-th *distance*; ties at the
        # bound are still admissible, so it pairs with the maximal tie.
        cut = (bounds.upper, _MAX_TIE)
        if len(results) >= k:
            entry = results[k - 1]
            cut = min(cut, (entry.distance, poi_tie_key(entry.payload)))
        return cut

    if len(tree) > 0:
        tiebreak = itertools.count()
        heap: List[Tuple[float, TieKey, int, Any]] = []
        root = tree.read_node(tree.root, counter)
        _expand_einn(root, query, heap, tiebreak, bounds, kth_cut())
        while heap:
            dist, tie, _, item = heapq.heappop(heap)
            if (dist, tie) > kth_cut():
                break
            if type(item) is _LeafBlock:
                entry = item.advance(heap)
                key = _result_key_entry(entry)
                if key in known_keys:
                    continue
                _insert_sorted(
                    results, NeighborResult(entry.point, entry.payload, dist)
                )
            else:
                node = tree.read_node(item, counter)
                _expand_einn(node, query, heap, tiebreak, bounds, kth_cut())

    return results[:k]


def _expand_einn(
    node: Node,
    query: Point,
    heap: List[Tuple[float, TieKey, int, Any]],
    tiebreak: "itertools.count[int]",
    bounds: PruningBounds,
    current_kth: Tuple[float, TieKey],
) -> None:
    if node.is_leaf:
        dists, ties = _leaf_columns(node, query)
        items: List[Tuple[float, TieKey, int, LeafEntry]] = []
        for dist, tie, entry in zip(dists, ties, node.entries):
            # Entries beyond the cut can never be reported (the cut only
            # tightens); dropping them here instead of at pop time keeps
            # the heap small without changing any observable behaviour.
            if (dist, tie) <= current_kth:
                items.append((dist, tie, next(tiebreak), entry))  # type: ignore[arg-type]
        if items:
            items.sort()
            head = items[0]
            heapq.heappush(heap, (head[0], head[1], head[2], _LeafBlock(items)))
        return
    arrays = node.arrays()
    mindists = mindist_arrays(
        query.x, query.y, arrays.lo_x, arrays.lo_y, arrays.hi_x, arrays.hi_y
    ).tolist()
    maxdists = (
        maxdist_arrays(
            query.x, query.y, arrays.lo_x, arrays.lo_y, arrays.hi_x, arrays.hi_y
        ).tolist()
        if bounds.has_lower
        else None
    )
    for index, child in enumerate(arrays.children):
        mindist = mindists[index]
        # Upward pruning: nothing in this MBR can enter the result.
        if (mindist, _NODE_TIE) > current_kth:
            if OBS.enabled:
                OBS.registry.counter("einn.pruned_mbrs", rule="upward").inc()
            continue
        # Downward pruning: the MBR is fully inside the certain circle;
        # every object in it is already known to the client.
        if maxdists is not None:
            maxdist = maxdists[index]
            if maxdist < bounds.lower:
                if OBS.enabled:
                    OBS.registry.counter("einn.pruned_mbrs", rule="downward").inc()
                continue
        heapq.heappush(heap, (mindist, _NODE_TIE, next(tiebreak), child))


def _insert_sorted(results: List[NeighborResult], item: NeighborResult) -> None:
    """Insert keeping ascending (distance, tie) order (small lists; O(n))."""
    item_key = (item.distance, poi_tie_key(item.payload))
    index = len(results)
    while index > 0 and (
        results[index - 1].distance,
        poi_tie_key(results[index - 1].payload),
    ) > item_key:
        index -= 1
    results.insert(index, item)


def _result_key(result: NeighborResult) -> Tuple[float, float, Any]:
    return (result.point.x, result.point.y, _hashable(result.payload))


def _result_key_entry(entry: LeafEntry) -> Tuple[float, float, Any]:
    return (entry.point.x, entry.point.y, _hashable(entry.payload))


def _hashable(payload: Any) -> Any:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
