"""Nearest-neighbor search over the R-tree.

Three algorithms, matching the paper's Section 2/3.3/4.4 cast:

- :func:`incremental_nearest` -- the best-first *incremental* NN algorithm
  of Hjaltason & Samet (the paper's INN).  It maintains a priority queue
  of nodes and objects ordered by MINDIST and reports neighbors in
  ascending distance order, visiting only the minimally necessary nodes;
- :func:`k_nearest_depth_first` -- the depth-first branch-and-bound
  algorithm of Roussopoulos et al., kept as the classic baseline;
- :func:`k_nearest_einn` -- the paper's *extended* INN (EINN): INN plus
  the two pruning rules of Section 3.3 driven by client-supplied
  :class:`PruningBounds`:

  1. *downward pruning*: any MBR whose MAXDIST to the query point is
     smaller than the branch-expanding lower bound is skipped -- every
     object in it lies inside the client's certain circle ``C_r`` and is
     already known;
  2. *upward pruning*: any MBR whose MINDIST exceeds the branch-expanding
     upper bound (or the running k-th candidate distance) is discarded.

All algorithms account page accesses through an optional
:class:`~repro.index.pagestats.PageAccessCounter`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.index.node import LeafEntry, Node
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree

__all__ = [
    "NeighborResult",
    "PruningBounds",
    "incremental_nearest",
    "k_nearest",
    "k_nearest_depth_first",
    "k_nearest_einn",
]


@dataclass(frozen=True, slots=True)
class NeighborResult:
    """One reported neighbor: its location, payload and distance."""

    point: Point
    payload: Any
    distance: float


@dataclass(frozen=True, slots=True)
class PruningBounds:
    """Branch-expanding bounds derived from the client's candidate heap.

    ``lower`` is ``D_ct`` -- the distance of the last *certain* entry; all
    POIs strictly inside that radius are already known to the client.
    ``upper`` is the distance of the heap's last entry when the heap is
    full; the true k-th NN cannot be farther.  Either bound may be absent
    (``0.0`` / ``inf``), matching heap states 1-6 of Section 3.3.
    """

    lower: float = 0.0
    upper: float = math.inf

    def __post_init__(self) -> None:
        if self.lower < 0.0:
            raise ValueError("lower bound must be non-negative")
        if self.upper < 0.0:
            raise ValueError("upper bound must be non-negative")

    @property
    def has_lower(self) -> bool:
        return self.lower > 0.0

    @property
    def has_upper(self) -> bool:
        return math.isfinite(self.upper)


def incremental_nearest(
    tree: RTree,
    query: Point,
    counter: Optional[PageAccessCounter] = None,
) -> Iterator[NeighborResult]:
    """Yield neighbors of ``query`` in ascending distance order (INN).

    The generator is lazy: callers pull exactly as many neighbors as they
    need, which is what the SNNN algorithm's incremental expansion relies
    on.
    """
    if len(tree) == 0:
        return
    tiebreak = itertools.count()
    # Heap items: (distance, tiebreak, node_or_entry)
    heap: List[Tuple[float, int, Any]] = []
    root = tree.read_node(tree.root, counter)
    _expand_into_heap(root, query, heap, tiebreak)
    while heap:
        dist, _, item = heapq.heappop(heap)
        if isinstance(item, LeafEntry):
            yield NeighborResult(item.point, item.payload, dist)
        else:
            node = tree.read_node(item, counter)
            _expand_into_heap(node, query, heap, tiebreak)


def _expand_into_heap(
    node: Node,
    query: Point,
    heap: List[Tuple[float, int, Any]],
    tiebreak: "itertools.count[int]",
) -> None:
    if node.is_leaf:
        for entry in node.entries:
            dist = query.distance_to(entry.point)  # type: ignore[union-attr]
            heapq.heappush(heap, (dist, next(tiebreak), entry))
    else:
        for entry in node.entries:
            dist = entry.bbox.mindist(query)
            heapq.heappush(heap, (dist, next(tiebreak), entry.child))  # type: ignore[union-attr]


def k_nearest(
    tree: RTree,
    query: Point,
    k: int,
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """The k nearest neighbors in ascending distance order, via INN."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return list(itertools.islice(incremental_nearest(tree, query, counter), k))


def k_nearest_depth_first(
    tree: RTree,
    query: Point,
    k: int,
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """Depth-first branch-and-bound kNN (Roussopoulos et al.).

    Kept as the classical single-step baseline; visits at least as many
    nodes as best-first search.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 or len(tree) == 0:
        return []
    # Max-heap (by negated distance) of the best k candidates so far.
    best: List[Tuple[float, int, LeafEntry]] = []
    tiebreak = itertools.count()

    def kth_distance() -> float:
        return -best[0][0] if len(best) == k else math.inf

    def visit(node: Node) -> None:
        tree.read_node(node, counter)
        if node.is_leaf:
            for entry in node.entries:
                dist = query.distance_to(entry.point)  # type: ignore[union-attr]
                if dist < kth_distance():
                    heapq.heappush(best, (-dist, next(tiebreak), entry))
                    if len(best) > k:
                        heapq.heappop(best)
        else:
            branches = sorted(
                node.entries, key=lambda entry: entry.bbox.mindist(query)
            )
            for entry in branches:
                if entry.bbox.mindist(query) < kth_distance():
                    visit(entry.child)  # type: ignore[union-attr]

    visit(tree.root)
    ordered = sorted(best, key=lambda item: -item[0])
    return [
        NeighborResult(entry.point, entry.payload, -neg_dist)
        for neg_dist, _, entry in ordered
    ]


def k_nearest_einn(
    tree: RTree,
    query: Point,
    k: int,
    bounds: PruningBounds = PruningBounds(),
    known_certain: Sequence[NeighborResult] = (),
    counter: Optional[PageAccessCounter] = None,
) -> List[NeighborResult]:
    """EINN: best-first kNN with the paper's pruning bounds.

    ``known_certain`` holds the POIs the client already verified (those
    whose distance is below ``bounds.lower`` plus any other certain
    entries).  They occupy result slots and let the search skip MBRs that
    are entirely inside the certain circle ``C_r``.

    Returns the global top-k (client knowledge merged with server finds),
    in ascending distance order.  With default bounds and no known
    results, EINN degenerates to plain INN.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return []

    results: List[NeighborResult] = sorted(known_certain, key=lambda r: r.distance)
    known_keys = {_result_key(r) for r in results}

    def kth_distance() -> float:
        candidates = [bounds.upper]
        if len(results) >= k:
            candidates.append(results[k - 1].distance)
        return min(candidates)

    if len(tree) > 0:
        tiebreak = itertools.count()
        heap: List[Tuple[float, int, Any]] = []
        root = tree.read_node(tree.root, counter)
        _expand_einn(root, query, heap, tiebreak, bounds, kth_distance())
        while heap:
            dist, _, item = heapq.heappop(heap)
            if dist > kth_distance():
                break
            if isinstance(item, LeafEntry):
                key = _result_key_entry(item)
                if key in known_keys:
                    continue
                _insert_sorted(results, NeighborResult(item.point, item.payload, dist))
            else:
                node = tree.read_node(item, counter)
                _expand_einn(node, query, heap, tiebreak, bounds, kth_distance())

    return results[:k]


def _expand_einn(
    node: Node,
    query: Point,
    heap: List[Tuple[float, int, Any]],
    tiebreak: "itertools.count[int]",
    bounds: PruningBounds,
    current_kth: float,
) -> None:
    if node.is_leaf:
        for entry in node.entries:
            dist = query.distance_to(entry.point)  # type: ignore[union-attr]
            if dist <= current_kth:
                heapq.heappush(heap, (dist, next(tiebreak), entry))
        return
    for entry in node.entries:
        mindist = entry.bbox.mindist(query)
        # Upward pruning: nothing in this MBR can enter the result.
        if mindist > current_kth:
            continue
        # Downward pruning: the MBR is fully inside the certain circle;
        # every object in it is already known to the client.
        if bounds.has_lower and entry.bbox.maxdist(query) < bounds.lower:
            continue
        heapq.heappush(heap, (mindist, next(tiebreak), entry.child))  # type: ignore[union-attr]


def _insert_sorted(results: List[NeighborResult], item: NeighborResult) -> None:
    """Insert keeping ascending distance order (small lists; O(n) is fine)."""
    index = len(results)
    while index > 0 and results[index - 1].distance > item.distance:
        index -= 1
    results.insert(index, item)


def _result_key(result: NeighborResult) -> Tuple[float, float, Any]:
    return (result.point.x, result.point.y, _hashable(result.payload))


def _result_key_entry(entry: LeafEntry) -> Tuple[float, float, Any]:
    return (entry.point.x, entry.point.y, _hashable(entry.payload))


def _hashable(payload: Any) -> Any:
    try:
        hash(payload)
    except TypeError:
        return id(payload)
    return payload
