"""Spatial indexing substrate: R-tree family and nearest-neighbor search.

The paper's spatial database server indexes points of interest with an
R*-tree [Beckmann et al. 1990] and answers kNN queries with the best-first
incremental algorithm of Hjaltason & Samet [1999] (called INN in the
paper).  Section 3.3 extends INN with client-supplied pruning bounds into
EINN; Section 4.4 compares the two by page accesses.

- :mod:`repro.index.pagestats` -- node/page access accounting and an LRU
  buffer pool model (the PAR metric);
- :mod:`repro.index.node` -- tree nodes and entries;
- :mod:`repro.index.rtree` -- insertion (Guttman quadratic split or R*
  split with forced reinsertion), bulk loading, range search;
- :mod:`repro.index.knn` -- INN, the depth-first branch-and-bound
  baseline, and EINN with the paper's downward/upward pruning rules.
"""

from repro.index.knn import (
    NeighborResult,
    PruningBounds,
    incremental_nearest,
    k_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
)
from repro.index.pagestats import BufferPool, PageAccessCounter
from repro.index.rtree import RTree, RTreeConfig, SplitPolicy
from repro.index.voronoi import VoronoiSemanticCache, voronoi_cell

__all__ = [
    "BufferPool",
    "NeighborResult",
    "PageAccessCounter",
    "PruningBounds",
    "RTree",
    "RTreeConfig",
    "SplitPolicy",
    "VoronoiSemanticCache",
    "incremental_nearest",
    "k_nearest",
    "k_nearest_depth_first",
    "k_nearest_einn",
    "voronoi_cell",
]
