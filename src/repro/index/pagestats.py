"""Page access accounting for the spatial index.

The paper's server-side metric is the *page access rate* (PAR): the number
of R*-tree nodes (index pages and data pages) touched per query.  Node
access counts predict I/O cost well because any reasonably large data set
does not fit in main memory (Section 4.4).

Two layers are provided:

- :class:`PageAccessCounter` -- raw node access counting, resettable per
  query, with running totals per query batch;
- :class:`BufferPool` -- an optional LRU buffer model on top of the
  counter, splitting accesses into main-memory hits and disk misses to
  expose the two extremes the paper discusses (everything cached versus
  every access hitting disk).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.analysis.runtime import SANITIZER

__all__ = ["PageAccessCounter", "BufferPool", "AccessBreakdown"]


@dataclass
class AccessBreakdown:
    """Summary of a finished query's page accesses.

    ``data_records`` counts object-record fetches: the paper's "data
    node" accesses.  An R*-tree leaf stores ``(point, object id)``
    entries; returning a full POI record to the client costs one more
    page.  EINN skips the records the client already holds, which is a
    large part of its advantage over INN (Section 4.4: "the EINN usually
    requests fewer R*-tree nodes and objects than INN").

    ``entries_scanned`` counts node entries examined by whole-node
    vectorized scans (see :meth:`PageAccessCounter.record_scan`).  It is
    a CPU-side diagnostic and never contributes to ``total``: scanning a
    node's entire entry block costs one page access, not one per entry.
    """

    total: int
    index_nodes: int
    leaf_nodes: int
    data_records: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    entries_scanned: int = 0


class PageAccessCounter:
    """Counts R-tree node accesses, distinguishing index and leaf pages.

    A counter can be shared by many queries: call :meth:`start_query`
    before each query and :meth:`finish_query` after, then read per-query
    breakdowns from :attr:`history` or aggregate with :meth:`mean_per_query`.
    """

    def __init__(self, buffer_pool: Optional["BufferPool"] = None) -> None:
        self._buffer_pool = buffer_pool
        self._current_index = 0
        self._current_leaf = 0
        self._current_data = 0
        self._current_hits = 0
        self._current_misses = 0
        self._current_entries = 0
        self._in_query = False
        self.history: List[AccessBreakdown] = []
        self.total_accesses = 0
        self.total_entries_scanned = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, page_id: int, is_leaf: bool) -> None:
        """Record one access to the node with identity ``page_id``."""
        if is_leaf:
            self._current_leaf += 1
        else:
            self._current_index += 1
        self.total_accesses += 1
        self._buffer_access(page_id)
        if SANITIZER.enabled:
            SANITIZER.note_billing("node")

    def record_scan(self, page_id: int, is_leaf: bool, entries: int) -> None:
        """Record one *whole-node* scan: one page access, ``entries`` rows.

        The vectorized kernels examine every entry of a node in a single
        array pass.  That pass touches exactly one page — the node — no
        matter how many entries it holds, so this bills one node access
        (identical to :meth:`record`) and tracks the scanned entry count
        separately for CPU-side diagnostics.  Using this method instead
        of per-entry :meth:`record` calls is what keeps the Figure-17
        page counts invariant under vectorization.
        """
        if entries < 0:
            raise ValueError("entries must be non-negative")
        self.record(page_id, is_leaf)
        self._current_entries += entries
        self.total_entries_scanned += entries

    def record_object(self, object_id: Hashable) -> None:
        """Record fetching one object record (a data-node access)."""
        self._current_data += 1
        self.total_accesses += 1
        self._buffer_access(("data", object_id))
        if SANITIZER.enabled:
            SANITIZER.note_billing("object")

    def _buffer_access(self, page_id: Hashable) -> None:
        if self._buffer_pool is not None:
            if self._buffer_pool.access(page_id):
                self._current_hits += 1
            else:
                self._current_misses += 1

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def start_query(self) -> None:
        """Reset the per-query counters (totals are preserved)."""
        self._current_index = 0
        self._current_leaf = 0
        self._current_data = 0
        self._current_hits = 0
        self._current_misses = 0
        self._current_entries = 0
        self._in_query = True

    def finish_query(self) -> AccessBreakdown:
        """Close the current query and append its breakdown to history."""
        breakdown = AccessBreakdown(
            total=self._current_index + self._current_leaf + self._current_data,
            index_nodes=self._current_index,
            leaf_nodes=self._current_leaf,
            data_records=self._current_data,
            buffer_hits=self._current_hits,
            buffer_misses=self._current_misses,
            entries_scanned=self._current_entries,
        )
        self.history.append(breakdown)
        self._in_query = False
        if SANITIZER.enabled:
            SANITIZER.note_finish_query(self, breakdown)
        return breakdown

    @property
    def current_total(self) -> int:
        """Accesses recorded since the last :meth:`start_query`."""
        return self._current_index + self._current_leaf + self._current_data

    def subcounter(self) -> "PageAccessCounter":
        """A private counter for one stream, sharing this buffer pool.

        Incremental streams bill their accesses here instead of onto the
        shared counter, so pages consumed while *another* query is open
        cannot be attributed to that query.  Fold the finished stream
        back with :meth:`absorb`.
        """
        sub = PageAccessCounter(buffer_pool=self._buffer_pool)
        if SANITIZER.enabled:
            SANITIZER.note_subcounter_created(sub)
        return sub

    def absorb(self, breakdown: AccessBreakdown) -> None:
        """Fold one finished sub-query into this counter's history.

        The breakdown becomes its own history entry (one logical query)
        and its accesses join the running total; the *current* open
        query, if any, is untouched.
        """
        self.history.append(breakdown)
        self.total_accesses += breakdown.total
        self.total_entries_scanned += breakdown.entries_scanned
        if SANITIZER.enabled:
            SANITIZER.note_absorb(breakdown)

    def mean_per_query(self) -> float:
        """Mean page accesses per finished query (0.0 with no history)."""
        if not self.history:
            return 0.0
        return sum(item.total for item in self.history) / len(self.history)

    def reset(self) -> None:
        """Clear everything, including history and totals."""
        self.history.clear()
        self.total_accesses = 0
        self.total_entries_scanned = 0
        self.start_query()
        self._in_query = False


class BufferPool:
    """A simple LRU page buffer model.

    ``capacity`` is the number of pages held in memory.  :meth:`access`
    returns True on a hit and False on a miss (after which the page is
    resident).  With ``capacity=0`` every access misses, modelling the
    cold-disk end of the spectrum from Section 4.4.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: int) -> bool:
        """Touch a page; returns True on buffer hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    @property
    def resident_pages(self) -> int:
        """Number of pages currently held by the buffer."""
        return len(self._pages)

    def hit_ratio(self) -> float:
        """Fraction of accesses served from memory (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Evict everything and reset statistics."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0
