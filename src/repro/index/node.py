"""R-tree nodes and entries, with a struct-of-arrays mirror per node.

A node is one disk page.  Leaf nodes hold :class:`LeafEntry` records
(a point of interest and its payload); internal nodes hold
:class:`ChildEntry` records pointing to lower nodes.  Every node carries a
unique ``page_id`` so access accounting and buffer modelling can identify
it.

The entry list remains the source of truth (splits, reinsertion and the
structural sanitizer all manipulate it), but every node lazily mirrors
its entries into a :class:`NodeArrays` column layout — coordinate lists
for leaves, NumPy MBR bound arrays for internal nodes — so a traversal
computes MINDIST/MAXDIST for a whole node in one vectorized pass
(:mod:`repro.geometry.vecmath`).  The mirror is invalidated
automatically: ``entries`` is a :class:`_TrackedList` whose mutators
drop the cache, and rebinding ``node.entries`` wraps the new list.  The
sanitizer cross-checks the mirror against the entry list after every
mutation (:func:`repro.analysis.invariants.validate_rtree`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, SupportsIndex, Tuple, Union

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vecmath import FloatArray

__all__ = ["LeafEntry", "ChildEntry", "Node", "NodeArrays"]

_page_ids = itertools.count()


@dataclass(slots=True)
class LeafEntry:
    """A stored spatial object: a point plus an opaque payload."""

    point: Point
    payload: Any = None

    @property
    def bbox(self) -> BoundingBox:
        """Degenerate box at the point (uniform entry interface)."""
        return BoundingBox.from_point(self.point)


class ChildEntry:
    """An internal-node entry: the child's MBR and the child itself.

    ``bbox`` is a property: rebinding it (``refresh_bbox`` after a
    subtree mutation, or a test corrupting an MBR on purpose) notifies
    the node currently holding this entry so its array mirror is
    rebuilt.  ``owner`` is maintained by the holding node's entry list.
    """

    __slots__ = ("_bbox", "child", "owner")

    def __init__(self, bbox: BoundingBox, child: "Node") -> None:
        self._bbox = bbox
        self.child = child
        self.owner: Optional["Node"] = None

    @property
    def bbox(self) -> BoundingBox:
        """The child's minimum bounding rectangle as stored in this page."""
        return self._bbox

    @bbox.setter
    def bbox(self, value: BoundingBox) -> None:
        """Replace the stored MBR and drop the holding node's mirror."""
        self._bbox = value
        owner = self.owner
        if owner is not None:
            owner._arrays = None

    def refresh_bbox(self) -> None:
        """Recompute the MBR from the child's current entries."""
        self.bbox = self.child.compute_bbox()

    def __repr__(self) -> str:
        return f"ChildEntry(bbox={self._bbox!r}, child={self.child!r})"


Entry = Union[LeafEntry, ChildEntry]


class NodeArrays:
    """Column (struct-of-arrays) mirror of one node's entries.

    Leaf nodes expose parallel coordinate lists (``xs``/``ys``; at leaf
    fan-out plain lists outrun ndarray dispatch) plus ``payloads``; the
    ``tie_keys`` slot starts ``None`` and is memoized by the kNN layer,
    which owns the tie-key function.  Internal nodes expose the four MBR
    bound arrays ``lo_x``/``lo_y``/``hi_x``/``hi_y`` (float64, one row
    per entry — together the ``lo[n, 2]``/``hi[n, 2]`` matrices of the
    vectorized layout) and the parallel ``children`` list.

    Instances track the owning node's entry list: a plain ``append`` of
    a matching entry extends the columns in place
    (:meth:`append_entry`, the incremental-mirror path), while every
    other mutation drops the whole object so the next access rebuilds
    it.  The declared strategy per R-tree mutation site lives in
    ``repro.analysis.hotpath.MUTATION_TABLE`` (RPR023).
    """

    __slots__ = (
        "is_leaf",
        "xs",
        "ys",
        "payloads",
        "tie_keys",
        "lo_x",
        "lo_y",
        "hi_x",
        "hi_y",
        "children",
    )

    is_leaf: bool
    xs: List[float]
    ys: List[float]
    payloads: List[Any]
    tie_keys: Optional[List[Tuple[int, float, str]]]
    lo_x: FloatArray
    lo_y: FloatArray
    hi_x: FloatArray
    hi_y: FloatArray
    children: List["Node"]

    def __init__(self, node: "Node") -> None:
        self.is_leaf = node.is_leaf
        self.tie_keys = None
        if node.is_leaf:
            xs: List[float] = []
            ys: List[float] = []
            payloads: List[Any] = []
            for entry in node.entries:
                assert isinstance(entry, LeafEntry)
                xs.append(entry.point.x)
                ys.append(entry.point.y)
                payloads.append(entry.payload)
            self.xs = xs
            self.ys = ys
            self.payloads = payloads
            empty = np.empty(0, dtype=np.float64)
            self.lo_x = empty
            self.lo_y = empty
            self.hi_x = empty
            self.hi_y = empty
            self.children = []
        else:
            lo_x: List[float] = []
            lo_y: List[float] = []
            hi_x: List[float] = []
            hi_y: List[float] = []
            children: List["Node"] = []
            for entry in node.entries:
                assert isinstance(entry, ChildEntry)
                box = entry.bbox
                lo_x.append(box.min_x)
                lo_y.append(box.min_y)
                hi_x.append(box.max_x)
                hi_y.append(box.max_y)
                children.append(entry.child)
            self.xs = []
            self.ys = []
            self.payloads = []
            self.lo_x = np.array(lo_x, dtype=np.float64)
            self.lo_y = np.array(lo_y, dtype=np.float64)
            self.hi_x = np.array(hi_x, dtype=np.float64)
            self.hi_y = np.array(hi_y, dtype=np.float64)
            self.children = children

    def __len__(self) -> int:
        return len(self.xs) if self.is_leaf else len(self.children)

    def append_entry(self, entry: Entry) -> bool:
        """Extend the columns in place for one appended entry.

        Returns False on an entry/mirror kind mismatch, in which case
        the caller must fall back to dropping the mirror.  The appended
        values are the same float64 coordinates ``__init__`` would have
        read, in the same order, so an extended mirror is bit-identical
        to a rebuilt one; the kNN layer's ``tie_keys`` memo is reset
        because it is parallel to the coordinate columns.
        """
        if self.is_leaf:
            if not isinstance(entry, LeafEntry):
                return False
            self.xs.append(entry.point.x)
            self.ys.append(entry.point.y)
            self.payloads.append(entry.payload)
            self.tie_keys = None
            return True
        if not isinstance(entry, ChildEntry):
            return False
        box = entry.bbox
        self.lo_x = np.append(self.lo_x, box.min_x)
        self.lo_y = np.append(self.lo_y, box.min_y)
        self.hi_x = np.append(self.hi_x, box.max_x)
        self.hi_y = np.append(self.hi_y, box.max_y)
        self.children.append(entry.child)
        return True


class _TrackedList(List[Entry]):
    """Entry list that drops the owner's array mirror on every mutation."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "Node", iterable: Iterable[Entry] = ()) -> None:
        super().__init__(iterable)
        self._owner = owner
        for item in self:
            if isinstance(item, ChildEntry):
                item.owner = owner

    # Every mutating list method funnels through here; additions also
    # adopt child entries so in-place MBR refreshes reach this node.
    def _touch(self) -> None:
        self._owner._arrays = None

    def _adopt(self, item: Entry) -> None:
        if isinstance(item, ChildEntry):
            item.owner = self._owner

    def append(self, item: Entry) -> None:
        super().append(item)
        self._adopt(item)
        # The incremental-mirror path (ROADMAP item 2): a live mirror is
        # extended in place instead of dropped; on a kind mismatch fall
        # back to invalidation.
        arrays = self._owner._arrays
        if arrays is None or not arrays.append_entry(item):
            self._touch()

    def extend(self, items: Iterable[Entry]) -> None:
        start = len(self)
        super().extend(items)
        arrays = self._owner._arrays
        for item in self[start:]:
            self._adopt(item)
            if arrays is not None and not arrays.append_entry(item):
                arrays = None
        if arrays is None:
            self._touch()

    def insert(self, index: SupportsIndex, item: Entry) -> None:
        super().insert(index, item)
        self._adopt(item)
        self._touch()

    def remove(self, item: Entry) -> None:
        super().remove(item)
        self._touch()

    def pop(self, index: SupportsIndex = -1) -> Entry:
        value = super().pop(index)
        self._touch()
        return value

    def clear(self) -> None:
        super().clear()
        self._touch()

    def sort(self, **kwargs: Any) -> None:
        super().sort(**kwargs)
        self._touch()

    def reverse(self) -> None:
        super().reverse()
        self._touch()

    def __setitem__(self, index: Any, value: Any) -> None:
        super().__setitem__(index, value)
        if isinstance(index, slice):
            for item in value:
                self._adopt(item)
        else:
            self._adopt(value)
        self._touch()

    def __delitem__(self, index: Any) -> None:
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, items: Iterable[Entry]) -> "_TrackedList":
        start = len(self)
        super().extend(items)
        for item in self[start:]:
            self._adopt(item)
        self._touch()
        return self

    def __imul__(self, count: SupportsIndex) -> "_TrackedList":
        result = super().__imul__(count)
        self._touch()
        return result


class Node:
    """One page of the R-tree.

    ``level`` is 0 for leaves and grows towards the root; forced
    reinsertion (R*) needs to reinsert orphaned entries at their original
    level, which is why nodes track it explicitly.
    """

    __slots__ = ("page_id", "level", "_entries", "_arrays")

    def __init__(self, level: int, entries: Optional[List[Entry]] = None) -> None:
        self.page_id: int = next(_page_ids)
        self.level = level
        self._arrays: Optional[NodeArrays] = None
        self._entries = _TrackedList(self, entries if entries is not None else ())

    @property
    def entries(self) -> List[Entry]:
        """The entry list; mutations invalidate the array mirror."""
        return self._entries

    @entries.setter
    def entries(self, value: List[Entry]) -> None:
        """Rebind the entry list (splits do this) and drop the mirror."""
        self._entries = _TrackedList(self, value)
        self._arrays = None

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes (their entries hold data points)."""
        return self.level == 0

    def __len__(self) -> int:
        return len(self._entries)

    def arrays(self) -> NodeArrays:
        """The column mirror of this node, rebuilt lazily after mutations."""
        cached = self._arrays
        if cached is None:
            cached = self._arrays = NodeArrays(self)
        return cached

    def compute_bbox(self) -> BoundingBox:
        """MBR of all entries (node must be non-empty).

        Reduced over the column mirror: one exact ``min``/``max`` per
        bound, the same values the scalar ``union_all`` chain produced
        (min/max are order-independent; a zero's sign never feeds any
        comparison downstream of ``hypot``'s absolute values).
        """
        if not self._entries:
            raise ValueError("cannot compute the bbox of an empty node")
        arrays = self.arrays()
        if self.is_leaf:
            return BoundingBox(
                min(arrays.xs), min(arrays.ys), max(arrays.xs), max(arrays.ys)
            )
        return BoundingBox(
            float(arrays.lo_x.min()),
            float(arrays.lo_y.min()),
            float(arrays.hi_x.max()),
            float(arrays.hi_y.max()),
        )

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"Node(page={self.page_id}, {kind}, {len(self._entries)} entries)"
