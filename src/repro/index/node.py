"""R-tree nodes and entries.

A node is one disk page.  Leaf nodes hold :class:`LeafEntry` records
(a point of interest and its payload); internal nodes hold
:class:`ChildEntry` records pointing to lower nodes.  Every node carries a
unique ``page_id`` so access accounting and buffer modelling can identify
it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Union

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

__all__ = ["LeafEntry", "ChildEntry", "Node"]

_page_ids = itertools.count()


@dataclass(slots=True)
class LeafEntry:
    """A stored spatial object: a point plus an opaque payload."""

    point: Point
    payload: Any = None

    @property
    def bbox(self) -> BoundingBox:
        """Degenerate box at the point (uniform entry interface)."""
        return BoundingBox.from_point(self.point)


@dataclass(slots=True)
class ChildEntry:
    """An internal-node entry: the child's MBR and the child itself."""

    bbox: BoundingBox
    child: "Node"

    def refresh_bbox(self) -> None:
        """Recompute the MBR from the child's current entries."""
        self.bbox = self.child.compute_bbox()


Entry = Union[LeafEntry, ChildEntry]


class Node:
    """One page of the R-tree.

    ``level`` is 0 for leaves and grows towards the root; forced
    reinsertion (R*) needs to reinsert orphaned entries at their original
    level, which is why nodes track it explicitly.
    """

    __slots__ = ("page_id", "level", "entries")

    def __init__(self, level: int, entries: Optional[List[Entry]] = None) -> None:
        self.page_id: int = next(_page_ids)
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes (their entries hold data points)."""
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def compute_bbox(self) -> BoundingBox:
        """MBR of all entries (node must be non-empty)."""
        if not self.entries:
            raise ValueError("cannot compute the bbox of an empty node")
        return BoundingBox.union_all(entry.bbox for entry in self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"Node(page={self.page_id}, {kind}, {len(self.entries)} entries)"
