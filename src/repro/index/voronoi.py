"""Voronoi-cell computation and the semantic-cache baseline.

Zheng, Lee & Lee ("On Semantic Caching and Query Scheduling for Mobile
Nearest-Neighbor Search", reference [22] of the paper) cache, together
with the 1NN answer, the *Voronoi cell* of that answer: as long as the
client stays inside the cell, its cached NN remains provably correct
without any communication.  The paper cites this as the closest
semantic-caching alternative to its peer-sharing scheme, so the
repository includes it as a runnable baseline.

Cells are computed from scratch by half-plane intersection: the Voronoi
cell of POI ``p`` within a bounding region is the region intersected
with every bisector half-plane ``closer-to-p-than-q`` for the other POIs
``q``.  That is O(n) clips of a convex polygon per cell -- quadratic
overall, perfectly fine for the POI populations of Tables 3-4, and it
reuses the library's own polygon clipping rather than an external
geometry package.  A distance pre-filter keeps the constant small: a POI
``q`` farther than twice the current cell radius cannot cut the cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

__all__ = ["voronoi_cell", "VoronoiSemanticCache", "VoronoiCacheStats"]


def voronoi_cell(
    pois: Sequence[Tuple[Point, Any]],
    index: int,
    bounds: BoundingBox,
) -> Polygon:
    """The Voronoi cell of ``pois[index]``, clipped to ``bounds``.

    The cell is the set of points closer to this POI than to any other
    (ties on bisectors included), intersected with the bounding box.
    """
    if not 0 <= index < len(pois):
        raise IndexError("POI index out of range")
    site, _ = pois[index]
    if not bounds.contains_point(site):
        raise ValueError("the site must lie inside the bounding region")
    cell: Optional[Polygon] = Polygon(
        [
            Point(bounds.min_x, bounds.min_y),
            Point(bounds.max_x, bounds.min_y),
            Point(bounds.max_x, bounds.max_y),
            Point(bounds.min_x, bounds.max_y),
        ]
    )
    # Clip nearest sites first so the cell (and with it the pre-filter
    # radius) shrinks as fast as possible.
    others = sorted(
        (other for i, (other, _) in enumerate(pois) if i != index),
        key=site.squared_distance_to,
    )
    for other in others:
        if cell is None:
            break
        radius = max(site.distance_to(v) for v in cell.vertices)
        if site.distance_to(other) > 2.0 * radius:
            # The bisector of a site farther than twice the cell radius
            # cannot intersect the cell; later sites are farther still.
            break
        cell = _clip_bisector(cell, site, other)
    if cell is None:
        # Degenerate (coincident sites): fall back to a point-ish sliver.
        raise ValueError("Voronoi cell degenerated to empty; coincident POIs?")
    return cell


def _clip_bisector(cell: Polygon, site: Point, other: Point) -> Optional[Polygon]:
    """Keep the half of ``cell`` closer to ``site`` than to ``other``.

    The bisector half-plane ``|x - site| <= |x - other|`` expands to
    ``2(other - site) . x <= |other|^2 - |site|^2``.
    """
    a = 2.0 * (other.x - site.x)
    b = 2.0 * (other.y - site.y)
    c = (other.x**2 + other.y**2) - (site.x**2 + site.y**2)
    if a == 0.0 and b == 0.0:
        # Coincident sites: the bisector is undefined; treat as no cut.
        return cell
    return cell.clip_half_plane(a, b, c)


@dataclass
class VoronoiCacheStats:
    """Counters for the semantic-cache baseline."""

    queries: int = 0
    cache_hits: int = 0
    server_fetches: int = 0

    @property
    def server_share(self) -> float:
        """Fraction of NN lookups that missed the cached cells."""
        return self.server_fetches / self.queries if self.queries else 0.0


class VoronoiSemanticCache:
    """The Zheng et al. 1NN semantic cache, as a client-side component.

    The client holds at most ``capacity`` (answer, cell) pairs.  A query
    at position ``q`` is a cache hit when ``q`` falls inside a cached
    cell -- the cached POI is then provably the nearest neighbor.  On a
    miss the client "contacts the server": this implementation computes
    the answer and its cell directly from the POI table it was given
    (the server-side cost model is out of scope for the baseline; the
    interesting metric is the *contact rate*).
    """

    def __init__(
        self,
        pois: Sequence[Tuple[Point, Any]],
        bounds: BoundingBox,
        capacity: int = 8,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not pois:
            raise ValueError("the POI table must be non-empty")
        self._pois = list(pois)
        self._bounds = bounds
        self.capacity = capacity
        self._cells: List[Tuple[Polygon, Point, Any]] = []
        self.stats = VoronoiCacheStats()

    def query(self, position: Point) -> Tuple[Point, Any]:
        """1NN of ``position``: from a cached cell when possible."""
        self.stats.queries += 1
        for slot, (cell, point, payload) in enumerate(self._cells):
            if cell.contains_point(position):
                self.stats.cache_hits += 1
                # Touch-to-front LRU.
                self._cells.insert(0, self._cells.pop(slot))
                return point, payload
        return self._fetch(position)

    def _fetch(self, position: Point) -> Tuple[Point, Any]:
        self.stats.server_fetches += 1
        index = min(
            range(len(self._pois)),
            key=lambda i: position.squared_distance_to(self._pois[i][0]),
        )
        point, payload = self._pois[index]
        cell = voronoi_cell(self._pois, index, self._bounds)
        self._cells.insert(0, (cell, point, payload))
        if len(self._cells) > self.capacity:
            self._cells.pop()
        return point, payload

    @property
    def cached_cells(self) -> int:
        """Number of Voronoi cells currently cached."""
        return len(self._cells)
