"""JSON persistence for POI sets.

Payloads must be JSON-serializable (the library's own generators use
string ids).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.geometry.point import Point

__all__ = ["pois_to_dict", "pois_from_dict", "save_pois", "load_pois"]

_FORMAT = "repro.poi-set"
_VERSION = 1

PoiList = List[Tuple[Point, Any]]


def pois_to_dict(pois: PoiList) -> Dict[str, Any]:
    """Serialize a POI list to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "pois": [
            {"x": point.x, "y": point.y, "payload": payload}
            for point, payload in pois
        ],
    }


def pois_from_dict(data: Dict[str, Any]) -> PoiList:
    """Rebuild a POI list from :func:`pois_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a serialized POI set: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version: {data.get('version')!r}")
    return [
        (Point(float(item["x"]), float(item["y"])), item["payload"])
        for item in data["pois"]
    ]


def save_pois(pois: PoiList, path: Union[str, Path]) -> None:
    """Write the POI set as JSON to ``path``."""
    Path(path).write_text(json.dumps(pois_to_dict(pois), indent=1))


def load_pois(path: Union[str, Path]) -> PoiList:
    """Read a POI set previously written by :func:`save_pois`."""
    return pois_from_dict(json.loads(Path(path).read_text()))
