"""Persistence: JSON serialization for worlds and experiment results.

Reproducibility infrastructure: simulation worlds (road networks, POI
sets) and regenerated figure series can be written to disk and reloaded
bit-for-bit, so an experiment archive is self-contained without
re-running the generators.

- :mod:`repro.io.networks` -- road-network save/load;
- :mod:`repro.io.pois` -- POI-set save/load;
- :mod:`repro.io.figures` -- FigureResult save/load plus CSV export.

The figure helpers are resolved lazily (PEP 562): :mod:`repro.io.
figures` deserializes ``experiments.runner.FigureResult`` and therefore
sits one layer above the rest of the package, so importing it eagerly
here would pull the experiment layer into every ``import repro.io``.
"""

from __future__ import annotations

from typing import List

from repro.io.networks import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.io.pois import load_pois, pois_from_dict, pois_to_dict, save_pois

__all__ = [
    "figure_from_dict",
    "figure_to_csv_rows",
    "figure_to_dict",
    "load_figure",
    "load_network",
    "load_pois",
    "network_from_dict",
    "network_to_dict",
    "pois_from_dict",
    "pois_to_dict",
    "save_figure",
    "save_network",
    "save_pois",
    "write_figure_csv",
]

_FIGURE_EXPORTS = {
    "figure_from_dict",
    "figure_to_csv_rows",
    "figure_to_dict",
    "load_figure",
    "save_figure",
    "write_figure_csv",
}


def __getattr__(name: str) -> object:
    if name in _FIGURE_EXPORTS:
        from repro.io import figures

        return getattr(figures, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
