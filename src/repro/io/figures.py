"""Persistence and CSV export for experiment results.

A :class:`~repro.experiments.runner.FigureResult` archives to JSON
(lossless round trip) and exports to flat CSV rows
(``figure, region, series, x, value``) for external plotting tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.experiments.runner import FigureResult

__all__ = [
    "figure_to_dict",
    "figure_from_dict",
    "figure_to_csv_rows",
    "save_figure",
    "load_figure",
    "write_figure_csv",
]

_FORMAT = "repro.figure-result"
_VERSION = 1


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    """Serialize a figure result to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "xs": list(result.xs),
        "series": {
            region: {label: list(values) for label, values in labelled.items()}
            for region, labelled in result.series.items()
        },
        "notes": result.notes,
    }


def figure_from_dict(data: Dict[str, Any]) -> FigureResult:
    """Rebuild a figure result from :func:`figure_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a serialized figure result: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version: {data.get('version')!r}")
    result = FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        xs=[float(x) for x in data["xs"]],
        notes=data.get("notes", ""),
    )
    for region, labelled in data["series"].items():
        result.series[region] = {
            label: [float(v) for v in values] for label, values in labelled.items()
        }
    return result


def figure_to_csv_rows(result: FigureResult) -> List[Tuple[str, str, str, float, float]]:
    """Flatten a figure into ``(figure, region, series, x, value)`` rows."""
    rows = []
    for region, labelled in result.series.items():
        for label, values in labelled.items():
            for x, value in zip(result.xs, values):
                rows.append((result.figure_id, region, label, x, value))
    return rows


def write_figure_csv(result: FigureResult, path: Union[str, Path]) -> None:
    """Write the flattened series as a CSV file with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "region", "series", "x", "value"])
        writer.writerows(figure_to_csv_rows(result))


def save_figure(result: FigureResult, path: Union[str, Path]) -> None:
    """Write the figure result as JSON to ``path``."""
    Path(path).write_text(json.dumps(figure_to_dict(result), indent=1))


def load_figure(path: Union[str, Path]) -> FigureResult:
    """Read a figure result previously written by :func:`save_figure`."""
    return figure_from_dict(json.loads(Path(path).read_text()))
