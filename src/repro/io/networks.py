"""JSON persistence for road networks.

The serialized form is deliberately plain: a node table (id, x, y) and
an edge table (u, v, length, road class name).  Node ids are compacted
on save and re-assigned on load, so a round-tripped network is
structurally identical even if the original ids had gaps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.geometry.point import Point
from repro.network.graph import RoadClass, SpatialNetwork

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT = "repro.spatial-network"
_VERSION = 1


def network_to_dict(network: SpatialNetwork) -> Dict[str, Any]:
    """Serialize a network to a JSON-compatible dictionary."""
    node_ids = sorted(network.node_ids())
    compact = {node_id: index for index, node_id in enumerate(node_ids)}
    nodes = []
    for node_id in node_ids:
        position = network.node_position(node_id)
        nodes.append({"x": position.x, "y": position.y})
    edges = []
    for edge in sorted(network.edges(), key=lambda e: e.key()):
        edges.append(
            {
                "u": compact[edge.u],
                "v": compact[edge.v],
                "length": edge.length,
                "road_class": edge.road_class.name,
            }
        )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "nodes": nodes,
        "edges": edges,
    }


def network_from_dict(data: Dict[str, Any]) -> SpatialNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a serialized spatial network: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version: {data.get('version')!r}")
    network = SpatialNetwork()
    ids = []
    for node in data["nodes"]:
        ids.append(network.add_node(Point(float(node["x"]), float(node["y"]))))
    for edge in data["edges"]:
        network.add_edge(
            ids[int(edge["u"])],
            ids[int(edge["v"])],
            road_class=RoadClass[edge["road_class"]],
            length=float(edge["length"]),
        )
    return network


def save_network(network: SpatialNetwork, path: Union[str, Path]) -> None:
    """Write the network as JSON to ``path``."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=1))


def load_network(path: Union[str, Path]) -> SpatialNetwork:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
