"""The ``OBS`` switchboard and cheap profiling hooks.

This module is the single runtime gate for all instrumentation, built
on the same pattern as :data:`repro.analysis.runtime.SANITIZER`: one
module-level singleton with a plain ``enabled`` attribute, so the
disabled fast path at every instrumented call site is exactly

.. code-block:: python

    if OBS.enabled:
        OBS.registry.counter("rtree.node_reads", kind="leaf").inc()

— one attribute read and a falsy branch (~30 ns), nothing else. The
observability layer ships *enabled* (counters are cheap and the sim
derives SQRR from them); ``REPRO_OBS=0`` turns every hook into that
single guarded read, which is the mode the ≤2 % quickstart-overhead
budget is asserted against (``tests/test_obs_overhead.py``).

Two time-based hooks live here rather than in the engine: the
:func:`span` context manager and the :func:`timed` decorator, both of
which read ``time.perf_counter``. They are therefore **only** for the
outer layers (``repro.sim``, ``repro.obs.bench``, experiments) — the
determinism zones ``repro.core`` / ``repro.index`` (lint rule RPR010)
must restrict themselves to counter increments.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Iterator, Optional, TypeVar, cast

from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["OBS", "Obs", "observed", "span", "timed"]

_FALSY = {"0", "false", "no", "off"}

_ENV_FLAG = "REPRO_OBS"


def _enabled_from_env() -> bool:
    """Read the ``REPRO_OBS`` flag (default: enabled)."""
    return os.environ.get(_ENV_FLAG, "1").strip().lower() not in _FALSY


class Obs:
    """Process-wide observability state: the on/off flag, registry, tracer.

    ``enabled`` is a plain attribute (no property indirection) so the
    hot-path guard stays a single ``LOAD_ATTR``. ``tracer`` is ``None``
    unless tracing was explicitly requested — metrics are cheap enough
    to default on, span records are not.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self, enabled: bool) -> None:
        """Create a switchboard with a fresh empty registry, no tracer."""
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = None

    def reset(self) -> None:
        """Replace the registry with a fresh one and drop the tracer.

        Used by ``repro-bench`` between suite sections and by tests;
        leaves ``enabled`` untouched.  Callers reset only while no other
        context is measuring, hence the setup-ownership annotations.
        """
        self.registry = MetricsRegistry()  # repro: guarded-by(setup)
        self.tracer = None  # repro: guarded-by(setup)


#: The process-wide switchboard. Import the singleton, not the class.
OBS = Obs(_enabled_from_env())


@contextmanager
def observed(
    enabled: bool = True, tracer: Optional[Tracer] = None
) -> Iterator[Obs]:
    """Temporarily force the switchboard on (or off) within a block.

    Restores the previous ``enabled``/``tracer`` state on exit; the
    registry is left in place so callers can read what accumulated.
    Nests correctly.
    """
    previous = (OBS.enabled, OBS.tracer)
    OBS.enabled = enabled
    if tracer is not None:
        OBS.tracer = tracer
    try:
        yield OBS
    finally:
        OBS.enabled, OBS.tracer = previous


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Time a block into the ``name`` histogram (seconds); no-op when off.

    When a tracer is installed on :data:`OBS`, the block is also
    recorded as a trace span (against the *tracer's* clock, which may
    be logical). Only for use outside the determinism zones — this
    reads ``time.perf_counter``.
    """
    if not OBS.enabled:
        yield
        return
    tracer = OBS.tracer
    if tracer is None:
        start = time.perf_counter()
        try:
            yield
        finally:
            OBS.registry.histogram(
                name, boundaries=DEFAULT_TIME_BUCKETS_S
            ).observe(time.perf_counter() - start)
    else:
        with tracer.span(name, **attrs):
            start = time.perf_counter()
            try:
                yield
            finally:
                OBS.registry.histogram(
                    name, boundaries=DEFAULT_TIME_BUCKETS_S
                ).observe(time.perf_counter() - start)


_Func = TypeVar("_Func", bound=Callable[..., Any])


def timed(name: Optional[str] = None) -> Callable[[_Func], _Func]:
    """Decorator: record each call's wall time into a histogram.

    The metric name defaults to the function's qualified name. When the
    switchboard is disabled the wrapper short-circuits straight into the
    wrapped function (one attribute read of overhead). Same determinism
    caveat as :func:`span`: keep out of ``repro.core`` / ``repro.index``.
    """

    def decorate(func: _Func) -> _Func:
        metric_name = (
            name if name is not None else f"{func.__module__}.{func.__qualname__}"
        )

        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not OBS.enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                OBS.registry.histogram(
                    metric_name, boundaries=DEFAULT_TIME_BUCKETS_S
                ).observe(time.perf_counter() - start)

        return cast(_Func, wrapper)

    return decorate
