"""``repro-bench``: the pinned micro/macro performance suite.

Runs a fixed, seeded benchmark suite over the engine's hot paths and
emits ``BENCH_baseline.json`` — the committed first point on the repo's
performance trajectory and the regression gate future perf PRs diff
against (``repro-bench --fast --check``).

Five sections, every one driven through the instrumentation this layer
added rather than ad-hoc counters in the benchmark script:

* ``tree_build`` — STR bulk load at the Table-4 LA POI count plus a
  dynamic R\\* insertion run (splits / forced reinserts).
* ``inn_vs_einn`` — the Figure 17 experiment: mean pages per query for
  EINN (with client pruning bounds) vs plain INN over the 30×30-mile
  parameter sets; the suite *requires* the paper's EINN ≤ INN ordering.
* ``verification`` — Lemma 3.2 single-peer and Lemma 3.8 multi-peer
  certification rates on synthesized peer constellations.
* ``service`` — the query-batching experiment: amortized pages per
  query as co-located client concurrency grows (waves of clustered kNN
  requests through the service's :class:`BatchExecutor`); the suite
  *requires* the amortized cost to be strictly decreasing.
* ``sim_window`` — one FAST-quality LA 2×2 simulation window; SQRR
  shares, per-tier counts and the global counter snapshot.
* ``network`` — road-network kNN at scale: the hierarchical
  ``NetworkIndex`` vs the Dijkstra reference on a real extract (``smoke``
  / ``fast``: the committed ~5k-node extract; ``full``: a generated
  100k+-node graph), reporting per-query settled vertices and the
  speedup; the suite *requires* answers bit-identical across the two
  implementations and a >= 10x settled-vertex reduction.

The output separates ``deterministic`` results (seeded, bit-stable
across runs on one machine; compared by ``--check`` with a tolerance
that absorbs cross-platform libm drift) from ``timings_s``
(informational wall-clock, never compared).
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.index.pagestats import AccessBreakdown
from repro.index.rtree import RTree, RTreeConfig
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.index import DijkstraIndex, HierarchicalIndex
from repro.network.loaders import load_bundled_extract
from repro.core.heap import CandidateHeap
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.core.verification import verify_multi_peer, verify_single_peer
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from repro.obs.profiling import OBS, observed
from repro.obs.tracing import Tracer, records_from_jsonl
from repro.sim.config import (
    PARAMETER_SETS_2X2,
    PARAMETER_SETS_30X30,
    MovementMode,
    SimulationConfig,
)
from repro.sim.simulation import Simulation
from repro.service.batching import BatchExecutor
from repro.service.protocol import KnnRequest
from repro.experiments.figures import _client_partial_knowledge, _true_knn_cache

__all__ = [
    "BenchProfile",
    "PROFILES",
    "SCHEMA_VERSION",
    "compare_to_baseline",
    "main",
    "run_suite",
    "validate_baseline",
]

#: Bumped whenever the result layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchProfile:
    """One pinned suite configuration (``smoke`` / ``fast`` / ``full``)."""

    name: str
    dynamic_inserts: int
    knn_regions: Tuple[str, ...]
    knn_ks: Tuple[int, ...]
    knn_queries: int
    verify_trials: int
    sim_region: str
    sim_duration_s: float
    sim_movement: MovementMode
    #: ``extract`` = the committed ~5k-node graph; ``la-100k`` = a
    #: generated 100k+-node LA-scale graph (``full`` only -- Dijkstra is
    #: visibly hopeless there, which is the point).
    network_graph: str = "extract"
    network_queries: int = 8
    network_pois: int = 600
    network_k: int = 10


PROFILES: Dict[str, BenchProfile] = {
    "smoke": BenchProfile(
        name="smoke",
        dynamic_inserts=150,
        knn_regions=("LA",),
        knn_ks=(4, 8),
        knn_queries=8,
        verify_trials=40,
        sim_region="LA",
        sim_duration_s=40.0,
        sim_movement=MovementMode.FREE,
        network_graph="extract",
        network_queries=4,
        network_pois=300,
        network_k=8,
    ),
    "fast": BenchProfile(
        name="fast",
        dynamic_inserts=500,
        knn_regions=("LA", "RV"),
        knn_ks=(4, 8, 14),
        knn_queries=25,
        verify_trials=200,
        sim_region="LA",
        sim_duration_s=240.0,
        sim_movement=MovementMode.ROAD_NETWORK,
        network_graph="extract",
        network_queries=10,
        network_pois=600,
        network_k=10,
    ),
    "full": BenchProfile(
        name="full",
        dynamic_inserts=1000,
        knn_regions=("LA", "SYN", "RV"),
        knn_ks=(4, 6, 8, 10, 12, 14),
        knn_queries=100,
        verify_trials=1000,
        sim_region="LA",
        sim_duration_s=900.0,
        sim_movement=MovementMode.ROAD_NETWORK,
        network_graph="la-100k",
        network_queries=10,
        network_pois=2000,
        network_k=10,
    ),
}


# ----------------------------------------------------------------------
# suite sections
# ----------------------------------------------------------------------
def _bench_tree_build(
    profile: BenchProfile, seed: int, timings: Dict[str, float]
) -> Dict[str, Any]:
    """STR bulk load + dynamic R\\* inserts at the Table-4 LA POI count."""
    params = PARAMETER_SETS_30X30["LA"]()
    rng = np.random.default_rng(seed + 11)
    coords = rng.uniform(0.0, 30.0, size=(params.poi_number, 2))
    pois = [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)]

    start = time.perf_counter()
    bulk_tree = RTree.bulk_load(list(pois), RTreeConfig())
    timings["tree_build.bulk_s"] = time.perf_counter() - start

    dynamic_tree = RTree(RTreeConfig())
    subset = pois[: profile.dynamic_inserts]
    start = time.perf_counter()
    for point, payload in subset:
        dynamic_tree.insert(point, payload)
    timings["tree_build.insert_s"] = time.perf_counter() - start

    return {
        "pois": len(bulk_tree),
        "bulk_height": bulk_tree.height,
        "dynamic_inserts": len(dynamic_tree),
        "dynamic_height": dynamic_tree.height,
        "dynamic_splits": dynamic_tree.split_count,
        "dynamic_reinserts": dynamic_tree.reinsert_count,
    }


def _mean_entries_scanned(history: Sequence[AccessBreakdown]) -> float:
    """Mean ``entries_scanned`` per query over a slice of counter history.

    The CPU-side companion to the pages-per-query series: how many node
    entries the vectorized kernels examined per query.  Never part of
    ``total`` (a whole-node scan is one page access), so it is tracked
    as its own baseline series.
    """
    if not history:
        return 0.0
    return sum(item.entries_scanned for item in history) / len(history)


def _bench_inn_vs_einn(
    profile: BenchProfile, seed: int, timings: Dict[str, float]
) -> Dict[str, Any]:
    """The Figure 17 experiment: mean pages per query, EINN vs INN.

    Page counts are read back from the ``server.pages_per_query``
    histograms in the global registry — the instrumentation is the
    measurement, the benchmark script only orchestrates.
    """
    out: Dict[str, Any] = {}
    start = time.perf_counter()
    # Seed offset by region position (as fig17 does post-PR-5): stable
    # across processes, distinct per region.
    for offset, region in enumerate(profile.knn_regions):
        params = PARAMETER_SETS_30X30[region]()
        rng = np.random.default_rng(seed + 1000 * (offset + 1))
        area = 30.0
        coords = rng.uniform(0.0, area, size=(params.poi_number, 2))
        pois = [
            (Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)
        ]
        tree = RTree.bulk_load(list(pois), RTreeConfig(max_entries=30))
        einn_server = SpatialDatabaseServer(tree, ServerAlgorithm.EINN)
        inn_server = SpatialDatabaseServer(tree, ServerAlgorithm.INN)
        einn_series: List[float] = []
        inn_series: List[float] = []
        einn_entries: List[float] = []
        inn_entries: List[float] = []
        for k in profile.knn_ks:
            einn_history_base = len(einn_server.counter.history)
            inn_history_base = len(inn_server.counter.history)
            einn_pages = OBS.registry.histogram(
                "server.pages_per_query",
                boundaries=DEFAULT_COUNT_BUCKETS,
                algorithm="einn",
            )
            inn_pages = OBS.registry.histogram(
                "server.pages_per_query",
                boundaries=DEFAULT_COUNT_BUCKETS,
                algorithm="inn",
            )
            base = (einn_pages.sum, einn_pages.count, inn_pages.sum, inn_pages.count)
            issued = 0
            attempts = 0
            while issued < profile.knn_queries and attempts < profile.knn_queries * 50:
                attempts += 1
                q = Point(float(rng.uniform(0, area)), float(rng.uniform(0, area)))
                bounds, known = _client_partial_knowledge(q, k, coords, params, rng)
                if len(known) >= k:
                    continue  # answered by peers; never reaches the server
                issued += 1
                einn_server.knn_query(q, k, bounds, known)
                inn_server.knn_query(q, k)
            einn_delta = (einn_pages.sum - base[0], einn_pages.count - base[1])
            inn_delta = (inn_pages.sum - base[2], inn_pages.count - base[3])
            einn_series.append(einn_delta[0] / max(einn_delta[1], 1))
            inn_series.append(inn_delta[0] / max(inn_delta[1], 1))
            einn_entries.append(
                _mean_entries_scanned(
                    einn_server.counter.history[einn_history_base:]
                )
            )
            inn_entries.append(
                _mean_entries_scanned(
                    inn_server.counter.history[inn_history_base:]
                )
            )
        out[region] = {
            "ks": list(profile.knn_ks),
            "einn_pages": einn_series,
            "inn_pages": inn_series,
            "einn_entries_scanned": einn_entries,
            "inn_entries_scanned": inn_entries,
        }
    timings["inn_vs_einn.total_s"] = time.perf_counter() - start
    return out


def _bench_verification(
    profile: BenchProfile, seed: int, timings: Dict[str, float]
) -> Dict[str, Any]:
    """Lemma 3.2 / Lemma 3.8 certification rates on synthesized peers."""
    rng = np.random.default_rng(seed + 17)
    area = 2.0
    tx_range = 0.124
    coords = rng.uniform(0.0, area, size=(400, 2))
    k = 4

    def random_peer(center: Point) -> Point:
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        radius = float(rng.uniform(0.0, tx_range))
        return Point(
            center.x + radius * float(np.cos(angle)),
            center.y + radius * float(np.sin(angle)),
        )

    single_certified = 0
    start = time.perf_counter()
    for _ in range(profile.verify_trials):
        query = Point(float(rng.uniform(0, area)), float(rng.uniform(0, area)))
        cache = _true_knn_cache(random_peer(query), 10, coords)
        heap = CandidateHeap(k)
        single_certified += verify_single_peer(query, cache, heap)
    timings["verification.single_s"] = time.perf_counter() - start

    multi_certified = 0
    multi_complete = 0
    start = time.perf_counter()
    for _ in range(profile.verify_trials):
        query = Point(float(rng.uniform(0, area)), float(rng.uniform(0, area)))
        caches = [
            _true_knn_cache(random_peer(query), 10, coords) for _ in range(3)
        ]
        heap = CandidateHeap(k)
        for cache in caches:
            verify_single_peer(query, cache, heap)
        multi_certified += verify_multi_peer(query, caches, heap)
        if heap.is_complete():
            multi_complete += 1
    timings["verification.multi_s"] = time.perf_counter() - start

    return {
        "trials": profile.verify_trials,
        "k": k,
        "single_certified": single_certified,
        "multi_newly_certified": multi_certified,
        "multi_complete": multi_complete,
    }


#: Client concurrency levels for the service batching experiment.
_SERVICE_CONCURRENCY: Tuple[int, ...] = (1, 2, 4, 8)


def _bench_service(
    profile: BenchProfile, seed: int, timings: Dict[str, float]
) -> Dict[str, Any]:
    """Amortized pages per query vs co-located client concurrency.

    The issue's acceptance experiment: waves of clustered kNN requests
    run through the service's :class:`BatchExecutor` at increasing
    concurrency.  With ``c`` clients sharing one EINN traversal the node
    reads amortize ~``1/c`` while shipped records stay exact, so the
    amortized per-query page cost must *strictly decrease* with ``c``
    (``validate_baseline`` enforces this).

    Determinism: the query anchors and per-client jitters are drawn once
    and reused at every level — level ``c`` uses the first ``c`` jittered
    points of each wave — and each level gets a fresh server so buffer
    state cannot leak between levels.
    """
    rng = np.random.default_rng(seed + 23)
    area = 10.0
    cell = 0.25
    k = 8
    coords = rng.uniform(0.0, area, size=(2000, 2))
    pois = [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)]
    tree = RTree.bulk_load(list(pois), RTreeConfig(max_entries=30))

    waves = profile.knn_queries
    max_clients = max(_SERVICE_CONCURRENCY)
    # Anchors sit at cell centers so the jittered cluster (±cell/8)
    # stays inside one batching cell and the whole wave merges.
    clusters: List[List[Point]] = []
    for _ in range(waves):
        anchor = Point(
            (float(rng.integers(1, int(area / cell) - 1)) + 0.5) * cell,
            (float(rng.integers(1, int(area / cell) - 1)) + 0.5) * cell,
        )
        clusters.append(
            [
                anchor.translated(
                    float(rng.uniform(-cell / 8.0, cell / 8.0)),
                    float(rng.uniform(-cell / 8.0, cell / 8.0)),
                )
                for _ in range(max_clients)
            ]
        )

    start = time.perf_counter()
    amortized: List[float] = []
    traversal_pages: List[float] = []
    scanned_entries: List[float] = []
    for level in _SERVICE_CONCURRENCY:
        server = SpatialDatabaseServer(tree, ServerAlgorithm.EINN)
        executor = BatchExecutor(server, cell_size=cell)
        total_pages = 0
        node_pages = 0
        entries = 0
        queries = 0
        for cluster in clusters:
            requests = [
                KnnRequest(request_id=index + 1, query=point, k=k)
                for index, point in enumerate(cluster[:level])
            ]
            for answer in executor.execute(requests):
                total_pages += answer.pages.total
                node_pages += answer.pages.index_nodes + answer.pages.leaf_nodes
                entries += answer.pages.entries_scanned
                queries += 1
        amortized.append(total_pages / queries)
        traversal_pages.append(node_pages / queries)
        scanned_entries.append(entries / queries)
    timings["service.total_s"] = time.perf_counter() - start

    return {
        "pois": len(pois),
        "k": k,
        "waves": waves,
        "concurrency": list(_SERVICE_CONCURRENCY),
        "amortized_pages": amortized,
        "amortized_node_pages": traversal_pages,
        "amortized_entries_scanned": scanned_entries,
    }


def _bench_sim_window(
    profile: BenchProfile,
    seed: int,
    timings: Dict[str, float],
    tracer: Optional[Tracer],
) -> Dict[str, Any]:
    """One FAST-quality simulation window; SQRR re-derived from metrics."""
    config = SimulationConfig(
        parameters=PARAMETER_SETS_2X2[profile.sim_region](),
        movement_mode=profile.sim_movement,
        seed=seed,
        t_execution_s=profile.sim_duration_s,
    )
    if tracer is not None:
        OBS.tracer = tracer
    start = time.perf_counter()
    simulation = Simulation(config)
    timings["sim_window.setup_s"] = time.perf_counter() - start
    start = time.perf_counter()
    metrics = simulation.run()
    timings["sim_window.run_s"] = time.perf_counter() - start
    OBS.tracer = None

    for phase in ("advance", "query"):
        histogram = OBS.registry.histogram(f"sim.phase.{phase}")
        timings[f"sim_window.phase_{phase}_mean_s"] = histogram.mean

    return {
        "region": profile.sim_region,
        "movement": profile.sim_movement.value,
        "duration_s": profile.sim_duration_s,
        "queries": metrics.total_queries,
        "warmup_queries": metrics.warmup_queries,
        "tier_counts": {
            tier.value: count for tier, count in metrics.tier_counts.items()
        },
        "server_share": metrics.server_share,
        "single_peer_share": metrics.single_peer_share,
        "multi_peer_share": metrics.multi_peer_share,
        "mean_server_pages": metrics.mean_server_pages(),
        "mean_peer_probes": metrics.mean_peer_probes(),
        "mean_tuples_received": metrics.mean_tuples_received(),
        "mean_latency_ms": metrics.mean_latency_ms(),
    }


def _bench_network(
    profile: BenchProfile, seed: int, timings: Dict[str, float]
) -> Dict[str, Any]:
    """Road-network kNN: hierarchical ``NetworkIndex`` vs plain Dijkstra.

    The same origins, POIs and ``k`` run through both implementations;
    the answers must agree bit for bit (summarized by the checksums the
    validator compares exactly), and the settled-vertex counts quantify
    the hierarchy's advantage.  The graph is pinned per profile, the
    query workload derives from the bench seed.
    """
    start = time.perf_counter()
    if profile.network_graph == "extract":
        network = load_bundled_extract()
    elif profile.network_graph == "la-100k":
        spec = RoadNetworkSpec(
            width=30.0, height=30.0, secondary_spacing=0.093, seed=1601
        )
        network = generate_road_network(spec)
    else:  # pragma: no cover - profile table is pinned above
        raise ValueError(f"unknown network graph {profile.network_graph!r}")
    timings["network.load_graph_s"] = time.perf_counter() - start

    start = time.perf_counter()
    hierarchy = HierarchicalIndex(network, leaf_size=64)
    timings["network.build_hierarchy_s"] = time.perf_counter() - start
    reference = DijkstraIndex(network)

    rng = random.Random(f"bench-network:{seed}")
    edges = list(network.edges())

    def on_edge() -> Any:
        edge = rng.choice(edges)
        return network.location_at(edge, rng.uniform(0.0, edge.length))

    pois = [(on_edge(), index) for index in range(profile.network_pois)]
    origins = [on_edge() for _ in range(profile.network_queries)]
    reference.register_pois(pois)
    hierarchy.register_pois(pois)

    def run(index: Any, label: str) -> Tuple[float, float]:
        index.stats.reset()
        checksum = 0.0
        start = time.perf_counter()
        for origin in origins:
            for neighbor in index.knn(origin, profile.network_k):
                if not math.isinf(neighbor.network_distance):
                    checksum += neighbor.network_distance
        timings[f"network.{label}_knn_s"] = time.perf_counter() - start
        return checksum, index.stats.settled_vertices / len(origins)

    checksum_dijkstra, settled_dijkstra = run(reference, "dijkstra")
    checksum_hierarchy, settled_hierarchy = run(hierarchy, "hierarchy")
    return {
        "graph": profile.network_graph,
        "graph_nodes": network.node_count,
        "graph_edges": network.edge_count,
        "pois": profile.network_pois,
        "queries": profile.network_queries,
        "k": profile.network_k,
        "hierarchy": {
            key: float(value) for key, value in hierarchy.describe().items()
        },
        "settled_per_query_dijkstra": settled_dijkstra,
        "settled_per_query_hierarchy": settled_hierarchy,
        "settled_speedup": settled_dijkstra / max(1.0, settled_hierarchy),
        "pois_refined_per_query": hierarchy.stats.pois_refined
        / profile.network_queries,
        "answer_checksum_dijkstra": checksum_dijkstra,
        "answer_checksum_hierarchy": checksum_hierarchy,
    }


def _measure_guard_overhead_ns(loops: int = 200_000) -> float:
    """Per-event cost of a *disabled* instrumentation guard, in ns.

    Times ``if OBS.enabled: ...`` with the switchboard off; includes
    loop overhead, so it over-estimates the true guard cost — which is
    the conservative direction for the ≤2 % overhead budget.
    """
    sink = 0
    best = float("inf")
    with observed(enabled=False):
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(loops):
                if OBS.enabled:
                    sink += 1
            best = min(best, time.perf_counter() - start)
    assert sink == 0
    return best / loops * 1e9


def _counter_snapshot(registry: MetricsRegistry) -> Dict[str, float]:
    """Counters and gauges only (histograms may hold wall-clock sums)."""
    return {
        name: value
        for name, value in registry.snapshot().items()
        if isinstance(value, float)
    }


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_suite(
    profile_name: str = "fast",
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Run the full pinned suite and return the baseline document.

    Forces the observability switchboard on for the duration (the suite
    *is* the instrumentation's consumer) and restores the previous
    global registry afterwards, so callers' metrics are unaffected.
    """
    profile = PROFILES[profile_name]
    timings: Dict[str, float] = {}
    previous_registry = OBS.registry
    try:
        with observed(enabled=True):
            OBS.registry = MetricsRegistry()
            tree_build = _bench_tree_build(profile, seed, timings)
            OBS.registry = MetricsRegistry()
            inn_vs_einn = _bench_inn_vs_einn(profile, seed, timings)
            OBS.registry = MetricsRegistry()
            verification = _bench_verification(profile, seed, timings)
            OBS.registry = MetricsRegistry()
            service = _bench_service(profile, seed, timings)
            OBS.registry = MetricsRegistry()
            sim_window = _bench_sim_window(profile, seed, timings, tracer)
            counters = _counter_snapshot(OBS.registry)
            # The network section runs *after* the counter snapshot on
            # its own registry, so every pre-existing deterministic
            # section (counters included) stays byte-identical to the
            # baselines committed before the section existed.
            OBS.registry = MetricsRegistry()
            network = _bench_network(profile, seed, timings)
    finally:
        OBS.registry = previous_registry
    timings["obs.guard_overhead_ns"] = _measure_guard_overhead_ns()
    return {
        "schema_version": SCHEMA_VERSION,
        "profile": profile.name,
        "seed": seed,
        "deterministic": {
            "tree_build": tree_build,
            "inn_vs_einn": inn_vs_einn,
            "verification": verification,
            "service": service,
            "sim_window": sim_window,
            "counters": counters,
            "network": network,
        },
        "timings_s": timings,
    }


# ----------------------------------------------------------------------
# validation and regression checking
# ----------------------------------------------------------------------
def validate_baseline(data: Any) -> List[str]:
    """Schema-validate a baseline document; returns problems (empty = ok).

    Beyond structure, enforces two qualitative invariants: EINN accesses
    no more pages than INN (Figure 17 / Section 4.4) at every measured
    ``k``, and the service's query batching makes the amortized per-query
    page cost *strictly decreasing* as co-located concurrency grows.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["baseline must be a JSON object"]
    if data.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got "
            f"{data.get('schema_version')!r}"
        )
    if data.get("profile") not in PROFILES:
        problems.append(f"unknown profile {data.get('profile')!r}")
    if not isinstance(data.get("seed"), int):
        problems.append("seed must be an integer")
    deterministic = data.get("deterministic")
    if not isinstance(deterministic, dict):
        return problems + ["missing 'deterministic' section"]
    for section in (
        "tree_build",
        "inn_vs_einn",
        "verification",
        "service",
        "sim_window",
        "counters",
        "network",
    ):
        if not isinstance(deterministic.get(section), dict):
            problems.append(f"missing deterministic section {section!r}")
    timings = data.get("timings_s")
    if not isinstance(timings, dict) or not all(
        isinstance(value, (int, float)) for value in timings.values()
    ):
        problems.append("'timings_s' must map names to numbers")
    for region, series in (deterministic.get("inn_vs_einn") or {}).items():
        einn = series.get("einn_pages", [])
        inn = series.get("inn_pages", [])
        ks = series.get("ks", [])
        einn_entries = series.get("einn_entries_scanned", [])
        inn_entries = series.get("inn_entries_scanned", [])
        if not (
            len(einn)
            == len(inn)
            == len(einn_entries)
            == len(inn_entries)
            == len(ks)
        ) or not ks:
            problems.append(f"inn_vs_einn[{region!r}]: malformed series")
            continue
        for k, einn_pages, inn_pages in zip(ks, einn, inn):
            if einn_pages > inn_pages + 1e-9:
                problems.append(
                    f"inn_vs_einn[{region!r}] k={k}: EINN accessed more "
                    f"pages than INN ({einn_pages:.2f} > {inn_pages:.2f}) — "
                    "violates the Figure 17 ordering"
                )
    service = deterministic.get("service") or {}
    concurrency = service.get("concurrency", [])
    amortized = service.get("amortized_pages", [])
    scanned = service.get("amortized_entries_scanned", [])
    if (
        len(concurrency) != len(amortized)
        or len(concurrency) != len(scanned)
        or len(concurrency) < 2
    ):
        problems.append("service: malformed concurrency/amortized_pages series")
    else:
        for index in range(1, len(amortized)):
            if not amortized[index] < amortized[index - 1]:
                problems.append(
                    f"service: amortized pages/query not strictly decreasing "
                    f"at concurrency {concurrency[index]} "
                    f"({amortized[index]:.2f} >= {amortized[index - 1]:.2f})"
                )
    network = deterministic.get("network") or {}
    if network:
        checksum_ref = network.get("answer_checksum_dijkstra")
        checksum_hier = network.get("answer_checksum_hierarchy")
        # Bit-identity across implementations is the NetworkIndex
        # contract, so the checksums must agree exactly, not within rtol.
        if checksum_ref != checksum_hier:  # repro: noqa(RPR001)
            problems.append(
                f"network: hierarchy answer checksum {checksum_hier!r} != "
                f"Dijkstra reference {checksum_ref!r} — the NetworkIndex "
                "exactness contract is broken"
            )
        speedup = network.get("settled_speedup", 0.0)
        if not isinstance(speedup, (int, float)) or speedup < 10.0:
            problems.append(
                f"network: settled-vertex speedup {speedup!r} below the "
                "required 10x hierarchy advantage"
            )
    return problems


def compare_to_baseline(
    fresh: Dict[str, Any], baseline: Dict[str, Any], rtol: float = 0.05
) -> List[str]:
    """Diff a fresh run against the committed baseline.

    Only the ``deterministic`` tree plus the identity fields are
    compared; numbers match within ``rtol`` relative tolerance (absorbs
    1-ulp libm differences across platforms that can flip a borderline
    certification in a long simulation), everything else exactly.
    """
    diffs: List[str] = []
    for field in ("schema_version", "profile", "seed"):
        if fresh.get(field) != baseline.get(field):
            diffs.append(
                f"{field}: fresh={fresh.get(field)!r} "
                f"baseline={baseline.get(field)!r}"
            )
    _compare_trees(
        fresh.get("deterministic"),
        baseline.get("deterministic"),
        "deterministic",
        rtol,
        diffs,
    )
    return diffs


def _compare_trees(
    fresh: Any, baseline: Any, path: str, rtol: float, diffs: List[str]
) -> None:
    if len(diffs) > 50:
        return
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            diffs.append(f"{path}: expected object, got {type(fresh).__name__}")
            return
        for key in sorted(set(fresh) | set(baseline)):
            if key not in fresh:
                diffs.append(f"{path}.{key}: missing from fresh run")
            elif key not in baseline:
                diffs.append(f"{path}.{key}: not in baseline (new metric?)")
            else:
                _compare_trees(
                    fresh[key], baseline[key], f"{path}.{key}", rtol, diffs
                )
    elif isinstance(baseline, list):
        if not isinstance(fresh, list) or len(fresh) != len(baseline):
            diffs.append(f"{path}: list shape changed")
            return
        for index, (fresh_item, base_item) in enumerate(zip(fresh, baseline)):
            _compare_trees(
                fresh_item, base_item, f"{path}[{index}]", rtol, diffs
            )
    elif isinstance(baseline, (int, float)) and not isinstance(baseline, bool):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            diffs.append(f"{path}: expected number, got {type(fresh).__name__}")
            return
        tolerance = rtol * max(abs(float(baseline)), 1.0)
        if abs(float(fresh) - float(baseline)) > tolerance:
            diffs.append(f"{path}: fresh={fresh} baseline={baseline} (> {rtol:.0%})")
    elif fresh != baseline:
        diffs.append(f"{path}: fresh={fresh!r} baseline={baseline!r}")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned micro/macro performance suite.",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="fast",
        help="suite size (default: fast — the committed baseline profile)",
    )
    parser.add_argument(
        "--fast",
        action="store_const",
        const="fast",
        dest="profile",
        help="shorthand for --profile fast",
    )
    parser.add_argument("--seed", type=int, default=0, help="suite RNG seed")
    parser.add_argument(
        "--output",
        default="BENCH_baseline.json",
        help="baseline file to write (or compare against with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against --output instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.05,
        help="relative tolerance for --check numeric comparisons",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record the sim window as a deterministic JSONL trace",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary output"
    )
    return parser


def _print_summary(result: Dict[str, Any]) -> None:
    deterministic = result["deterministic"]
    timings = result["timings_s"]
    tree = deterministic["tree_build"]
    sim = deterministic["sim_window"]
    print(
        f"tree_build: {tree['pois']} POIs bulk in "
        f"{timings['tree_build.bulk_s']:.3f}s (height {tree['bulk_height']}), "
        f"{tree['dynamic_inserts']} inserts in "
        f"{timings['tree_build.insert_s']:.3f}s "
        f"({tree['dynamic_splits']} splits, {tree['dynamic_reinserts']} reinserts)"
    )
    for region, series in deterministic["inn_vs_einn"].items():
        pairs = ", ".join(
            f"k={k}: {einn:.1f}/{inn:.1f}"
            for k, einn, inn in zip(
                series["ks"], series["einn_pages"], series["inn_pages"]
            )
        )
        print(f"inn_vs_einn[{region}] (EINN/INN mean pages): {pairs}")
    service = deterministic["service"]
    pairs = ", ".join(
        f"c={level}: {pages:.1f}"
        for level, pages in zip(
            service["concurrency"], service["amortized_pages"]
        )
    )
    print(f"service (amortized pages/query by concurrency): {pairs}")
    verify = deterministic["verification"]
    print(
        f"verification: {verify['single_certified']} single-peer certs, "
        f"{verify['multi_newly_certified']} multi-peer certs over "
        f"{verify['trials']} trials (k={verify['k']})"
    )
    print(
        f"sim_window[{sim['region']}/{sim['movement']}]: "
        f"{sim['queries']} queries in {timings['sim_window.run_s']:.2f}s, "
        f"SQRR {100 * sim['server_share']:.1f}%, "
        f"single {100 * sim['single_peer_share']:.1f}%, "
        f"multi {100 * sim['multi_peer_share']:.1f}%, "
        f"{sim['mean_server_pages']:.1f} pages/server-query"
    )
    network = deterministic["network"]
    print(
        f"network[{network['graph']}]: {network['graph_nodes']} nodes, "
        f"{network['queries']} kNN queries (k={network['k']}), "
        f"settled/query {network['settled_per_query_dijkstra']:.0f} -> "
        f"{network['settled_per_query_hierarchy']:.0f} "
        f"({network['settled_speedup']:.1f}x), build "
        f"{timings['network.build_hierarchy_s']:.2f}s"
    )
    print(
        f"obs: disabled-guard cost {timings['obs.guard_overhead_ns']:.0f} ns/event"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point for ``repro-bench``."""
    args = _build_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    result = run_suite(args.profile, seed=args.seed, tracer=tracer)

    problems = validate_baseline(result)
    if problems:
        for problem in problems:
            print(f"repro-bench: invalid result: {problem}", file=sys.stderr)
        return 2

    if tracer is not None and args.trace:
        text = tracer.to_jsonl()
        with open(args.trace, "w", encoding="utf-8") as stream:
            stream.write(text)
        reloaded = records_from_jsonl(text)
        if len(reloaded) != len(tracer.records):
            print("repro-bench: trace round-trip mismatch", file=sys.stderr)
            return 2
        if not args.quiet:
            print(f"trace: {len(tracer.records)} records -> {args.trace}")

    if not args.quiet:
        _print_summary(result)

    if args.check:
        try:
            with open(args.output, "r", encoding="utf-8") as stream:
                baseline = json.load(stream)
        except (OSError, ValueError) as exc:
            print(f"repro-bench: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        diffs = compare_to_baseline(result, baseline, rtol=args.rtol)
        if diffs:
            print(
                f"repro-bench: {len(diffs)} regression(s) vs {args.output}:",
                file=sys.stderr,
            )
            for diff in diffs:
                print(f"  {diff}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"check: within {args.rtol:.0%} of {args.output}")
        return 0

    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(result, stream, indent=2, sort_keys=True)
        stream.write("\n")
    if not args.quiet:
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
