"""In-process metrics primitives: counters, gauges and histograms.

The registry is the passive half of the observability layer
(:mod:`repro.obs`): instrumented call sites in the engine increment
metrics through the :data:`repro.obs.profiling.OBS` switchboard, and
readers (``repro-bench``, :class:`repro.sim.stats.SimulationMetrics`,
tests) pull deterministic snapshots back out.

Design constraints, in order:

* **Zero dependencies.** Stdlib plus the rank-0 runtime sanitizer
  (:mod:`repro.analysis.runtime`, which itself imports nothing);
  importable from rank-0 of the layering DAG (below ``repro.index``
  and ``repro.core``).
* **Determinism.** Snapshots are sorted by ``(name, labels)``; two runs
  of the same workload produce byte-identical snapshots. Nothing in
  this module reads a clock or an RNG.
* **Thread safety.** The service era mutates metrics from client
  threads and the server's event-loop thread at once.  One registry
  lock (``MetricsRegistry._lock``, handed down into every instrument it
  creates) guards both the get-or-create probes and the instrument
  mutators, so concurrent ``inc()`` calls never lose updates.  Under
  ``REPRO_SANITIZE=1`` each mutation additionally reports to the race
  sanitizer, which checks the owning guard is actually held.
* **Cheap.** A labelled lookup is one dict probe on a pre-sorted tuple
  key; ``inc()`` is one uncontended lock round-trip plus a float add.
  The *disabled* path never reaches this module at all (call sites
  guard on ``OBS.enabled`` first), which is what keeps the <=2%
  disabled-overhead budget intact.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.runtime import SANITIZER, TrackedLock, named_lock

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram boundaries for wall-time observations, in seconds.
#: Spans six decades: 10 microseconds (a guarded counter bump plus loop
#: overhead) up to 10 seconds (a FULL-quality sim window).
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)

#: Default histogram boundaries for count-valued observations (pages per
#: query, candidates per verification, ...). 1-2-5 ladder up to 1000.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
)

#: Canonical label representation: ``(key, value)`` pairs sorted by key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Normalise a label mapping into the sorted tuple used as dict key."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k=v,...}`` for snapshots (bare ``name`` if unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing count.

    Counters may only go up: ``inc`` rejects negative amounts so that a
    registry snapshot taken later in a run always dominates an earlier
    one, which is what makes delta-based accounting (``repro-bench``
    sections, SQRR shares) sound.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self, name: str, labels: LabelKey, lock: Optional[TrackedLock] = None
    ) -> None:
        """Create a zero-valued counter. Use the registry, not this."""
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock if lock is not None else named_lock("Counter._lock")

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter; must be >= 0."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self._value += amount
            if SANITIZER.enabled:
                SANITIZER.note_metric_mutation(self.name, self._lock.name)

    @property
    def value(self) -> float:
        """Current accumulated count."""
        return self._value


class Gauge:
    """A point-in-time value that can move both ways (e.g. heap size)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self, name: str, labels: LabelKey, lock: Optional[TrackedLock] = None
    ) -> None:
        """Create a zero-valued gauge. Use the registry, not this."""
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock if lock is not None else named_lock("Gauge._lock")

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        with self._lock:
            self._value = float(value)
            if SANITIZER.enabled:
                SANITIZER.note_metric_mutation(self.name, self._lock.name)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount
            if SANITIZER.enabled:
                SANITIZER.note_metric_mutation(self.name, self._lock.name)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount
            if SANITIZER.enabled:
                SANITIZER.note_metric_mutation(self.name, self._lock.name)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram:
    """A fixed-boundary histogram with cumulative-friendly semantics.

    Bucket ``i`` counts observations ``v <= boundaries[i]`` that did not
    fit an earlier bucket (Prometheus ``le`` semantics, stored
    non-cumulatively); one overflow bucket catches everything above the
    last boundary. Boundaries are fixed at creation — merging and
    diffing histograms across runs needs identical buckets, so there is
    deliberately no dynamic resizing.
    """

    __slots__ = (
        "name",
        "labels",
        "boundaries",
        "bucket_counts",
        "_sum",
        "_count",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        boundaries: Sequence[float],
        lock: Optional[TrackedLock] = None,
    ) -> None:
        """Create an empty histogram. Use the registry, not this."""
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        ordered = tuple(float(b) for b in boundaries)
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing: "
                f"{ordered}"
            )
        self.name = name
        self.labels = labels
        self.boundaries = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = lock if lock is not None else named_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        """Record one observation.

        A value exactly equal to a boundary lands in that boundary's
        bucket (``le`` semantics); values above the last boundary land
        in the overflow bucket.
        """
        with self._lock:
            self.bucket_counts[bisect_left(self.boundaries, value)] += 1
            self._sum += value
            self._count += 1
            if SANITIZER.enabled:
                SANITIZER.note_metric_mutation(self.name, self._lock.name)

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        return self._sum / self._count


#: Any metric instrument stored in a registry.
Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of metrics keyed on ``(name, sorted labels)``.

    One registry instance backs the global :data:`repro.obs.OBS`
    switchboard; :class:`repro.sim.stats.SimulationMetrics` owns a
    private always-on registry so per-simulation accounting is isolated
    from whatever else the process measures.
    """

    __slots__ = ("_metrics", "_lock", "generation")

    def __init__(self) -> None:
        """Create an empty registry."""
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}
        # Bumped by reset(); hot paths that hoist instrument lookups out
        # of their inner loop key their cache on (registry, generation)
        # so an in-place reset invalidates them.
        self.generation = 0
        # One lock guards the registry map *and* every instrument it
        # creates: the instruments' hot mutators and the get-or-create
        # probes never interleave, and the lock-order graph stays a
        # single canonical node (see config.LOCK_ALIASES).
        self._lock = named_lock("MetricsRegistry._lock")

    def counter(self, name: str, **labels: object) -> Counter:
        """Return the counter for ``(name, labels)``, creating it at 0."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Counter(name, key[1], lock=self._lock)
                self._metrics[key] = metric
            elif not isinstance(metric, Counter):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Return the gauge for ``(name, labels)``, creating it at 0."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Gauge(name, key[1], lock=self._lock)
                self._metrics[key] = metric
            elif not isinstance(metric, Gauge):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Return the histogram for ``(name, labels)``, creating it empty.

        ``boundaries`` defaults to :data:`DEFAULT_TIME_BUCKETS_S`; when
        the histogram already exists, a conflicting ``boundaries``
        argument raises instead of silently rebucketing.
        """
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                bounds = DEFAULT_TIME_BUCKETS_S if boundaries is None else boundaries
                metric = Histogram(name, key[1], bounds, lock=self._lock)
                self._metrics[key] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            elif boundaries is not None and tuple(
                float(b) for b in boundaries
            ) != metric.boundaries:
                raise ValueError(
                    f"histogram {name!r} already registered with boundaries "
                    f"{metric.boundaries}"
                )
            return metric

    def value(self, name: str, **labels: object) -> float:
        """Value of the counter/gauge at ``(name, labels)``; 0.0 if absent."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read .sum/.count")
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all of its label sets."""
        acc = 0.0
        with self._lock:
            instruments = list(self._metrics.items())
        for (metric_name, _), metric in instruments:
            if metric_name == name and not isinstance(metric, Histogram):
                acc += metric.value
        return acc

    def label_values(self, name: str, label: str) -> Dict[str, float]:
        """Per-label-value totals for one counter/gauge family.

        ``label_values("senn.queries", "tier")`` returns e.g.
        ``{"single_peer": 12.0, "server": 3.0}``; label sets without
        the requested label key are skipped.
        """
        out: Dict[str, float] = {}
        with self._lock:
            instruments = list(self._metrics.items())
        for (metric_name, labels), metric in instruments:
            if metric_name != name or isinstance(metric, Histogram):
                continue
            for key, value in labels:
                if key == label:
                    out[value] = out.get(value, 0.0) + metric.value
        return out

    def __iter__(self) -> Iterator[Metric]:
        """Iterate metrics in deterministic ``(name, labels)`` order.

        The order is materialized under the lock, then yielded outside
        it: the (non-reentrant) registry lock must not be held across
        consumer code that may itself touch an instrument.
        """
        with self._lock:
            ordered = [self._metrics[key] for key in sorted(self._metrics)]
        yield from ordered

    def __len__(self) -> int:
        """Number of registered metric instruments."""
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic flat snapshot of every metric.

        Counters and gauges map ``name{k=v}`` to their float value;
        histograms map to ``{"count", "sum", "boundaries", "buckets"}``.
        Key order is sorted, so ``json.dumps`` of two identical runs is
        byte-identical — this is what ``repro-bench`` commits.
        """
        out: Dict[str, object] = {}
        for metric in self:
            rendered = _render_name(metric.name, metric.labels)
            if isinstance(metric, Histogram):
                out[rendered] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "boundaries": list(metric.boundaries),
                    "buckets": list(metric.bucket_counts),
                }
            else:
                out[rendered] = metric.value
        return out

    def reset(self) -> None:
        """Drop every metric (used between bench sections and by tests)."""
        with self._lock:
            self._metrics.clear()
            self.generation += 1
