"""Structured span/event tracing with JSONL export.

A :class:`Tracer` records a flat list of :class:`TraceRecord` objects —
closed spans (with start/end timestamps and parent links) and point
events. Two properties keep traces compatible with the determinism
rules that govern the rest of the codebase (``repro.testing`` replay,
lint rule RPR010's no-wall-clock zones):

* **Deterministic by default.** The default clock is a
  :class:`LogicalClock` that returns 0, 1, 2, ... — so a trace of a
  seeded scenario is byte-identical across runs and machines, and can
  be committed or diffed like any other artifact.
* **Injectable.** Pass ``clock=time.perf_counter`` for real latencies
  (the sim layer does this), or any zero-argument callable for replay.

Export is JSON Lines: one record per line, keys sorted, so traces
stream, diff and ``grep`` well. :func:`records_from_jsonl` inverts
:meth:`Tracer.to_jsonl` exactly.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

__all__ = ["LogicalClock", "TraceRecord", "Tracer", "records_from_jsonl"]


class LogicalClock:
    """Deterministic monotone clock: successive reads return 0, 1, 2, ...

    Event *order* is preserved, wall time is not — which is exactly the
    trade a replayable trace wants.
    """

    __slots__ = ("_ticks",)

    def __init__(self) -> None:
        """Start the clock at tick 0."""
        self._ticks = 0

    def __call__(self) -> float:
        """Return the current tick and advance."""
        tick = self._ticks
        self._ticks += 1
        return float(tick)


@dataclass
class TraceRecord:
    """One closed span or point event.

    ``kind`` is ``"span"`` or ``"event"``; events have ``end == start``.
    ``span_id`` is unique within a tracer, ``parent_id`` links nested
    spans (``None`` at the root). ``attrs`` carries JSON-serialisable
    user attributes.
    """

    kind: str
    name: str
    start: float
    end: float
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span duration in clock units (0 for events)."""
        return self.end - self.start

    def to_json(self) -> str:
        """Serialise to one sorted-key JSON line (no trailing newline)."""
        return json.dumps(
            {
                "kind": self.kind,
                "name": self.name,
                "start": self.start,
                "end": self.end,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "attrs": self.attrs,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse a line produced by :meth:`to_json`."""
        raw = json.loads(line)
        return cls(
            kind=raw["kind"],
            name=raw["name"],
            start=raw["start"],
            end=raw["end"],
            span_id=raw["span_id"],
            parent_id=raw["parent_id"],
            attrs=raw["attrs"],
        )


class Tracer:
    """Collects spans and events against an injectable clock.

    Records are appended when a span *closes*, so a child span appears
    before its parent in ``records`` (completion order); reconstruct
    the tree through ``parent_id`` when nesting matters.
    """

    __slots__ = ("clock", "records", "_stack", "_next_id")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Create an empty tracer.

        ``clock`` defaults to a fresh deterministic
        :class:`LogicalClock`; pass ``time.perf_counter`` for wall time.
        """
        self.clock: Callable[[], float] = (
            clock if clock is not None else LogicalClock()
        )
        self.records: List[TraceRecord] = []
        self._stack: List[int] = []
        self._next_id = 0

    def _allocate_id(self) -> int:
        next_id = self._next_id
        self._next_id += 1
        return next_id

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[TraceRecord]:
        """Open a span for the duration of the ``with`` block.

        The yielded record is live: the body may add ``attrs`` entries;
        ``end`` is stamped and the record appended when the block exits
        (also on exception, with ``attrs["error"]`` set to the exception
        class name).
        """
        record = TraceRecord(
            kind="span",
            name=name,
            start=self.clock(),
            end=0.0,
            span_id=self._allocate_id(),
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self._stack.append(record.span_id)
        try:
            yield record
        except BaseException as exc:
            record.attrs["error"] = type(exc).__name__
            raise
        finally:
            self._stack.pop()
            record.end = self.clock()
            self.records.append(record)

    def event(self, name: str, **attrs: Any) -> TraceRecord:
        """Record an instantaneous event under the current span (if any)."""
        stamp = self.clock()
        record = TraceRecord(
            kind="event",
            name=name,
            start=stamp,
            end=stamp,
            span_id=self._allocate_id(),
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self.records.append(record)
        return record

    def to_jsonl(self) -> str:
        """Render all records as JSON Lines (one record per line)."""
        return "".join(record.to_json() + "\n" for record in self.records)

    def export_jsonl(self, stream: TextIO) -> int:
        """Write all records to ``stream`` as JSONL; return record count."""
        stream.write(self.to_jsonl())
        return len(self.records)


def records_from_jsonl(text: str) -> List[TraceRecord]:
    """Parse JSONL produced by :meth:`Tracer.to_jsonl` (exact inverse)."""
    return [
        TraceRecord.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]
