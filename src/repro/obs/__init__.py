"""``repro.obs`` — the zero-dependency observability layer.

Three small pieces, re-exported here:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-boundary histograms; deterministic snapshots.
* :mod:`repro.obs.tracing` — :class:`Tracer` spans/events with JSONL
  export and an injectable (deterministic-by-default) clock.
* :mod:`repro.obs.profiling` — the :data:`OBS` switchboard plus the
  :func:`span` / :func:`timed` wall-time hooks for the outer layers.

``repro.obs`` sits at rank 0 of the layering DAG (like
``repro.analysis.runtime``) so the engine's hot paths — R\\*-tree node
reads, EINN pruning, verification outcomes, cache hits — can increment
counters without an upward import. The ``repro-bench`` CLI lives in
:mod:`repro.obs.bench` at rank 5 and is deliberately **not** imported
here, so importing the instrumentation facade never drags in the
benchmark suite (or its ``repro.core``/``repro.sim`` dependencies).

Set ``REPRO_OBS=0`` to disable every hook; see
``docs/observability.md`` for the metric catalog and usage.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiling import OBS, Obs, observed, span, timed
from repro.obs.tracing import LogicalClock, TraceRecord, Tracer, records_from_jsonl

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "LogicalClock",
    "MetricsRegistry",
    "OBS",
    "Obs",
    "TraceRecord",
    "Tracer",
    "observed",
    "records_from_jsonl",
    "span",
    "timed",
]
