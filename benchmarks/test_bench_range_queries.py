"""Future-work experiment: sharing-based range queries (Section 5).

No paper figure exists; this bench runs the LA 2x2 configuration with a
range-query workload at several radii and reports the SQRR breakdown.
Expected shape: small radii are covered by cached certain circles and
stay off the server; larger radii exceed what peers can certify and the
server share climbs back up.
"""

import dataclasses

from repro.experiments.runner import format_table, run_one
from repro.sim.config import los_angeles_2x2


def run_range_sweep(quality, seed=0):
    duration = 900.0 if quality.value == "fast" else 3600.0
    radii = [0.1, 0.25, 0.5, 0.9]
    rows = []
    for radius in radii:
        metrics = run_one(
            los_angeles_2x2(),
            seed=seed,
            t_execution_s=duration,
            config_overrides={
                "range_query_fraction": 1.0,
                "range_radius_miles": radius,
            },
        )
        shares = metrics.percentages()
        rows.append(
            (
                radius,
                shares["server"],
                shares["single_peer"],
                shares["multi_peer"],
            )
        )
    return rows


def test_range_query_sharing(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_range_sweep, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "range_queries",
        format_table(
            "Sharing-based range queries (LA 2x2, 100% range workload)",
            ["radius mi", "server %", "single %", "multi %"],
            rows,
        ),
    )
    servers = [row[1] for row in rows]
    # Small radii must be heavily peer-answered; the largest radius must
    # lean more on the server than the smallest.
    assert servers[0] < 70.0
    assert servers[-1] > servers[0]
    # Peer sharing happens at all for the mid radii.
    assert any(row[2] + row[3] > 5.0 for row in rows)
