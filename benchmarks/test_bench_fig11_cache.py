"""Figure 11: resolution shares vs cache capacity, 2x2-mile area.

Paper shape: server workload falls as hosts cache more NNs; in sparse
Riverside County the effect saturates once the cache exceeds the useful
neighborhood (the paper observes stabilization after ~5 items).
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig11_cache_capacity(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig11, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig11", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        # Larger caches cannot hurt: compare the extremes with slack for
        # simulation noise.
        assert server[-1] <= server[0] + 5.0, region
    # The dense region benefits at least as much as the sparse one.
    la_drop = (
        result.region_series("LA", "server")[0]
        - result.region_series("LA", "server")[-1]
    )
    assert la_drop > 0.0
