"""Figure 12: resolution shares vs cache capacity, 30x30-mile area.

Paper shape: even though the POI population dwarfs the cache, larger
caches still produce a remarkable server-workload decrease (Fig. 12a).
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig12_cache_capacity_large(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig12, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig12", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        assert server[-1] <= server[0] + 5.0, region
    la = result.region_series("LA", "server")
    assert la[-1] < la[0]
