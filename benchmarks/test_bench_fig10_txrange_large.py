"""Figure 10: resolution shares vs transmission range, 30x30-mile area.

Same qualitative shape as Figure 9 over the large-area parameter sets,
run through the density-preserving window scale-down (EXPERIMENTS.md).
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig10_transmission_range_large(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig10, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig10", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        assert server[-1] < server[0], region
    assert (
        result.region_series("LA", "server")[-1]
        < result.region_series("RV", "server")[-1]
    )
