"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (figure or table), prints
the series, persists the rendering under ``benchmarks/results/`` and
asserts the qualitative shape documented in DESIGN.md.

Set ``REPRO_QUALITY=full`` to run at paper-scale horizons (slow);
the default FAST profile is sized for CI-style runs.
"""

import os
import pathlib

import pytest

from repro.experiments.runner import Quality

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def quality() -> Quality:
    value = os.environ.get("REPRO_QUALITY", "fast").lower()
    return Quality.FULL if value == "full" else Quality.FAST


@pytest.fixture(scope="session")
def record_result():
    """Persist a rendered artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record
