"""Ablation: cache policy 1 (most recent result) vs a history of N.

The paper's policy 1 keeps only the latest query result per host.  This
ablation retains the last N results (each with its own certain circle)
and measures the SQRR impact plus the extra tuples the P2P channel has
to carry -- quantifying the trade-off the paper mentions ("it may
increase the communication overheads among mobile hosts").
"""

from repro.experiments.runner import format_table, run_one
from repro.sim.config import los_angeles_2x2


def run_history_sweep(quality, seed=0):
    duration = 900.0 if quality.value == "fast" else 3600.0
    rows = []
    for history in (1, 2, 4):
        metrics = run_one(
            los_angeles_2x2(),
            seed=seed,
            t_execution_s=duration,
            config_overrides={"cache_history": history},
        )
        shares = metrics.percentages()
        rows.append(
            (
                history,
                shares["server"],
                shares["single_peer"],
                shares["multi_peer"],
                metrics.mean_tuples_received(),
            )
        )
    return rows


def test_ablation_cache_history(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_history_sweep, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "ablation_cache_history",
        format_table(
            "Ablation: cache history depth (LA 2x2)",
            ["history", "server %", "single %", "multi %", "tuples/query"],
            rows,
        ),
    )
    baseline_server = rows[0][1]
    deepest_server = rows[-1][1]
    # More retained results can only help resolution (within noise)...
    assert deepest_server <= baseline_server + 3.0
    # ...at the price of more tuples over the ad-hoc channel.
    assert rows[-1][4] > rows[0][4]
