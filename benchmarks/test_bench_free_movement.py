"""Section 4.3: free movement mode vs road-network mode.

Paper shape: free movement shrinks inter-host distances slightly, so the
LA server share drops a few percentage points (5-8 % in the 2x2 area);
the sparse sets barely change.
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_free_movement_comparison(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.free_movement_comparison,
        kwargs={"quality": quality},
        rounds=1,
        iterations=1,
    )
    record_result("free_movement", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        road, free = result.region_series(region, "server")
        # Free movement should not change sharing drastically anywhere;
        # the sparse sets are noisy at short horizons (few queries), so
        # the band is generous there.
        assert free <= road + 15.0, region
    # The paper's concrete claim lives in the dense region: free movement
    # decreases the LA server share a few percentage points.
    la_road, la_free = result.region_series("LA", "server")
    assert la_free <= la_road + 2.0
