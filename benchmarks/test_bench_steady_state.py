"""Methodology check: "recorded after the system reached steady state".

Traces a full LA 2x2 run from its cold start and reports the server
share per time bucket.  Expected shape: near-100 % in the first bucket
(cold caches) and a settled, much lower plateau afterwards -- which
justifies the warm-up fraction the other benchmarks discard.
"""

from repro.experiments.runner import format_table
from repro.sim.config import SimulationConfig, los_angeles_2x2
from repro.sim.simulation import Simulation


def run_steady_state_trace(quality, seed=0):
    duration = 1200.0 if quality.value == "fast" else 3600.0
    config = SimulationConfig(
        parameters=los_angeles_2x2(),
        t_execution_s=duration,
        seed=seed,
        record_trace=True,
    )
    sim = Simulation(config)
    sim.run()
    return sim.trace.steady_state_report(bucket_seconds=duration / 8.0)


def test_steady_state_convergence(benchmark, quality, record_result):
    report = benchmark.pedantic(
        run_steady_state_trace, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    rows = [
        (start, 100.0 * share, count)
        for start, share, count in zip(
            report.bucket_starts, report.server_shares, report.query_counts
        )
    ]
    record_result(
        "steady_state",
        format_table(
            "Server share over time from a cold start (LA 2x2)",
            ["bucket start s", "server %", "queries"],
            rows,
        ),
    )
    # Cold start is server-heavy; the plateau is far below it.  (The
    # very first queries all hit the server, but the opening bucket
    # already averages in the fast cache-filling phase.)
    assert report.server_shares[0] > 0.55
    assert report.server_shares[-1] < report.server_shares[0] - 0.15
    # The system settles within the horizon.
    settled = report.settled_after(tolerance=0.15)
    assert settled is not None
    assert settled < report.bucket_starts[-1]
