"""Ablation: uniform vs clustered POI placement.

Gas stations cluster at intersections and commercial strips; the paper's
real-world densities come from such data while the simulator defaults to
uniform placement.  This ablation runs the LA 2x2 configuration both
ways to show the SQRR shape is robust to the placement model (the effect
on sharing is second-order: what matters is how far the k-th NN is,
which shifts only moderately under clustering at fixed density).
"""

from repro.experiments.runner import format_table, run_one
from repro.sim.config import los_angeles_2x2


def run_distribution_comparison(quality, seed=0):
    duration = 900.0 if quality.value == "fast" else 3600.0
    rows = []
    for label, overrides in (
        ("uniform", {}),
        ("clustered x4", {"poi_clusters": 4, "poi_cluster_sigma_miles": 0.15}),
        ("clustered x2", {"poi_clusters": 2, "poi_cluster_sigma_miles": 0.15}),
    ):
        metrics = run_one(
            los_angeles_2x2(),
            seed=seed,
            t_execution_s=duration,
            config_overrides=overrides,
        )
        shares = metrics.percentages()
        rows.append(
            (label, shares["server"], shares["single_peer"], shares["multi_peer"])
        )
    return rows


def test_ablation_poi_distribution(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_distribution_comparison,
        kwargs={"quality": quality},
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_poi_distribution",
        format_table(
            "Ablation: POI placement model (LA 2x2)",
            ["placement", "server %", "single %", "multi %"],
            rows,
        ),
    )
    servers = [row[1] for row in rows]
    # Sharing keeps working under every placement model...
    assert all(share < 90.0 for share in servers)
    # ...and the shape is robust: the spread between models stays bounded.
    assert max(servers) - min(servers) < 30.0
