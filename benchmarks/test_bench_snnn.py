"""Section 3.4: SNNN correctness and cost on a road network.

No paper figure exists for SNNN; this bench validates Algorithm 2
against the INE oracle (zero mismatches) and reports per-query cost and
where the Euclidean candidates came from.
"""

from repro.experiments import figures
from repro.experiments.runner import format_table


def test_snnn_cost_study(benchmark, quality, record_result):
    results = benchmark.pedantic(
        figures.snnn_cost_study, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    rows = [(key, value) for key, value in results.items()]
    record_result(
        "snnn_study",
        format_table("SNNN vs INE oracle (road network, k=3)", ["metric", "value"], rows),
    )
    assert results["mismatches"] == 0.0
    assert results["snnn_ms_per_query"] > 0.0
    assert (
        results["mean_candidates_from_peers"]
        + results["mean_candidates_from_server"]
        >= 3.0
    )
