"""Figure 9: resolution shares vs transmission range, 2x2-mile area.

Paper shape: as the range grows more queries are answered by peers; the
effect is most pronounced in dense Los Angeles County, where at 200 m
only ~20-30 % of queries reach the server; sparse Riverside stays
server-heavy.
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig09_transmission_range(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig9, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig09", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        # Wider range -> fewer server queries.
        assert server[-1] < server[0], region
        # Peer shares grow correspondingly.
        single = result.region_series(region, "single_peer")
        assert single[-1] > single[0], region
    # Density ordering at the widest range: LA offloads most, RV least.
    assert (
        result.region_series("LA", "server")[-1]
        < result.region_series("RV", "server")[-1]
    )
    # LA at 200 m: the paper reports ~20-30 % server share; allow a loose
    # band for the shorter FAST horizon.
    assert result.region_series("LA", "server")[-1] < 60.0
