"""Ablation: exact disk-union coverage vs the paper's polygonization.

The paper approximates the multi-peer certain region by polygonizing the
peer circles and merging with MapOverlay; this repo's default verifier is
an exact disk-union test.  The polygon backend under-approximates the
region, so it can only certify the same or fewer candidates -- its
multi-peer share is bounded by the exact backend's (and the server share
is correspondingly no lower).
"""

from repro.experiments import figures
from repro.experiments.runner import format_table


def test_ablation_coverage_backend(benchmark, quality, record_result):
    results = benchmark.pedantic(
        figures.ablation_coverage_backend,
        kwargs={"quality": quality},
        rounds=1,
        iterations=1,
    )
    rows = [
        (backend, shares["server"], shares["single_peer"], shares["multi_peer"])
        for backend, shares in results.items()
    ]
    record_result(
        "ablation_coverage",
        format_table(
            "Ablation: multi-peer coverage backend (LA 2x2)",
            ["backend", "server %", "single %", "multi %"],
            rows,
        ),
    )
    exact = results["exact"]
    polygon = results["polygon"]
    # Conservative approximation: never certifies more.
    assert polygon["multi_peer"] <= exact["multi_peer"] + 1.0
    # Single-peer verification is identical in both backends.
    assert abs(polygon["single_peer"] - exact["single_peer"]) < 10.0
