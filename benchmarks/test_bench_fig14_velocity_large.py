"""Figure 14: resolution shares vs host velocity, 30x30-mile area."""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig14_velocity_large(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig14, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig14", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        assert max(server) - min(server) < 35.0, region
    la = result.region_series("LA", "server")
    rv = result.region_series("RV", "server")
    assert sum(la) / len(la) < sum(rv) / len(rv)
