"""Head-to-head: unverified adoption vs SENN's verified sharing.

The contribution the paper claims over plain cooperative caching is the
local *verification* of peer results.  This bench quantifies both sides:
naive adoption of the nearest peer's cached answer saves more server
queries than SENN, but a measurable fraction of its answers is simply
wrong; SENN's are exact by construction.
"""

import numpy as np

from repro.core.cache import CachedQueryResult
from repro.core.naive_sharing import (
    AccuracyReport,
    evaluate_accuracy,
    naive_share_query,
)
from repro.core.senn import ResolutionTier, SennConfig, senn_query
from repro.core.server import SpatialDatabaseServer
from repro.experiments.runner import format_table
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def run_comparison(quality, seed=0):
    rng = np.random.default_rng(seed)
    queries = 150 if quality.value == "fast" else 600
    extent = 10.0
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, 60), rng.uniform(0, extent, 60))
        )
    ]
    server_naive = SpatialDatabaseServer.from_points(pois)
    server_senn = SpatialDatabaseServer.from_points(pois)
    k = 3

    def knn_cache(location, size):
        ordered = sorted(
            (location.distance_to(p), i, p) for i, (p, _) in enumerate(pois)
        )
        return CachedQueryResult(
            location,
            tuple(NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:size]),
        )

    naive_report = AccuracyReport()
    senn_report = AccuracyReport()
    naive_server_queries = 0
    senn_server_queries = 0
    for _ in range(queries):
        q = Point(float(rng.uniform(1, 9)), float(rng.uniform(1, 9)))
        peer_loc = Point(
            q.x + float(rng.uniform(-0.6, 0.6)), q.y + float(rng.uniform(-0.6, 0.6))
        )
        cache = knn_cache(peer_loc, 6)
        truth = sorted(((q.distance_to(p), payload) for p, payload in pois))[:k]

        naive = naive_share_query(
            q, k, [cache], adoption_radius=1.0, server=server_naive
        )
        if naive.tier is ResolutionTier.SERVER:
            naive_server_queries += 1
        evaluate_accuracy(naive.neighbors, truth, naive_report)

        senn = senn_query(q, k, None, [cache], SennConfig(k=k), server=server_senn)
        if senn.tier is ResolutionTier.SERVER:
            senn_server_queries += 1
        evaluate_accuracy(senn.neighbors[:k], truth, senn_report)

    rows = [
        (
            "naive adoption",
            100.0 * naive_server_queries / queries,
            100.0 * naive_report.exact_ratio,
            naive_report.mean_distance_error,
        ),
        (
            "SENN (verified)",
            100.0 * senn_server_queries / queries,
            100.0 * senn_report.exact_ratio,
            senn_report.mean_distance_error,
        ),
    ]
    return rows


def test_naive_vs_verified_sharing(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_comparison, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "naive_vs_verified",
        format_table(
            "Unverified adoption vs verified sharing (k=3, one peer/query)",
            ["strategy", "server %", "exact answers %", "kth-dist error"],
            rows,
        ),
    )
    naive, senn = rows
    # SENN is always exact; naive adoption is measurably wrong sometimes.
    assert senn[2] == 100.0
    assert naive[2] < 100.0
    assert naive[3] > 0.0
    # The price of correctness: SENN escalates more queries.
    assert senn[1] >= naive[1]
