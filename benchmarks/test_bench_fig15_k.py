"""Figure 15: resolution shares vs k, 2x2-mile area.

Paper shape: server workload grows with k (result sharing is much more
effective for small k); the LA set grows strongly (the paper reports a
68 % increase from k=1 to k=9) while Riverside grows only ~11 % because
its baseline is already high.
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig15_k(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig15, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig15", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        # Larger k -> more server queries.
        assert server[-1] > server[0], region
    # Sharing stays more effective in the dense region at every k
    # (Riverside's sparse caches saturate towards 100 % quickly).
    la = result.region_series("LA", "server")
    rv = result.region_series("RV", "server")
    for la_value, rv_value in zip(la, rv):
        assert la_value <= rv_value + 5.0
