"""Figure 16: resolution shares vs k, 30x30-mile area.

Paper shape: server workload grows with k (LA +29 % from k=3 to 15;
Riverside +19 % from its higher baseline).
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig16_k_large(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig16, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig16", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        assert server[-1] > server[0], region
    assert (
        result.region_series("LA", "server")[0]
        < result.region_series("RV", "server")[0]
    )
