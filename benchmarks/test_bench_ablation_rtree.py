"""Ablation: R* split vs Guttman quadratic split.

The paper motivates the R*-tree by its lower overlap and better query
response; this ablation quantifies that on the Suburbia-sized POI set by
mean INN pages per query.
"""

from repro.experiments import figures
from repro.experiments.runner import format_table


def test_ablation_rtree_split(benchmark, quality, record_result):
    results = benchmark.pedantic(
        figures.ablation_rtree_split,
        kwargs={"quality": quality},
        rounds=1,
        iterations=1,
    )
    rows = [(policy, pages) for policy, pages in results.items()]
    record_result(
        "ablation_rtree",
        format_table(
            "Ablation: mean INN pages per 8-NN query (3105 POIs)",
            ["split policy", "pages/query"],
            rows,
        ),
    )
    assert results["rstar"] > 0
    assert results["quadratic"] > 0
    # R* should be at least competitive with the quadratic split.
    assert results["rstar"] <= results["quadratic"] * 1.25
