"""Baseline comparison: continuous-query strategies for a moving host.

The paper's Section 2 positions its sharing scheme against the moving-
query-point literature.  This bench drives a host along a fixed
trajectory and compares the server load of:

- naive multi-step (a server kNN at every sample);
- Song-Roussopoulos bounded reuse [18];
- split points [19] for the 1NN case (zero queries after preprocessing);
- Voronoi semantic caching [22] for the 1NN case.

Expected shape: bounded reuse beats naive by a wide margin; the
precomputation-based and semantic approaches contact the server least.
"""

import numpy as np

from repro.continuous.multistep import bounded_multistep_knn, naive_multistep_knn
from repro.continuous.splitpoints import continuous_nearest_segment
from repro.continuous.trajectory import Trajectory
from repro.core.server import SpatialDatabaseServer
from repro.experiments.runner import format_table
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.voronoi import VoronoiSemanticCache


def run_continuous_comparison(quality, seed=0):
    rng = np.random.default_rng(seed)
    extent = 10.0
    poi_count = 60 if quality.value == "fast" else 200
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(
                rng.uniform(0.2, extent - 0.2, poi_count),
                rng.uniform(0.2, extent - 0.2, poi_count),
            )
        )
    ]
    trajectory = Trajectory([Point(0.5, 0.5), Point(9.0, 2.0), Point(9.5, 9.5)])
    positions = trajectory.sample(0.15)
    k = 3

    naive_server = SpatialDatabaseServer.from_points(pois)
    naive = naive_multistep_knn(naive_server, positions, k)

    bounded_server = SpatialDatabaseServer.from_points(pois)
    bounded = bounded_multistep_knn(bounded_server, positions, k)

    # Split points: 1NN precomputation per trajectory leg, no queries after.
    split_count = sum(
        len(continuous_nearest_segment(pois, a, b)) for a, b in trajectory.segments()
    )

    voronoi = VoronoiSemanticCache(
        pois, BoundingBox(0, 0, extent, extent), capacity=8
    )
    for position in positions:
        voronoi.query(position)

    rows = [
        ("naive multi-step", naive.server_queries, naive.server_pages),
        ("bounded reuse", bounded.server_queries, bounded.server_pages),
        ("split points (1NN)", 0, 0),
        ("voronoi cache (1NN)", voronoi.stats.server_fetches, 0),
    ]
    return rows, len(positions), split_count


def test_continuous_baselines(benchmark, quality, record_result):
    rows, samples, split_count = benchmark.pedantic(
        run_continuous_comparison, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "continuous_baselines",
        format_table(
            f"Continuous-query baselines ({samples} samples; "
            f"{split_count} split intervals precomputed)",
            ["strategy", "server queries", "server pages"],
            rows,
        ),
    )
    by_name = {name: (queries, pages) for name, queries, pages in rows}
    naive_q = by_name["naive multi-step"][0]
    bounded_q = by_name["bounded reuse"][0]
    voronoi_q = by_name["voronoi cache (1NN)"][0]
    assert naive_q == samples
    # Bounded reuse must save a large share of the round trips.
    assert bounded_q < naive_q / 2
    # Semantic caching refetches once per crossed cell, far below naive.
    assert voronoi_q < naive_q / 2
    assert split_count > 1
