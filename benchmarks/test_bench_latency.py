"""Access latency: the paper's first claimed benefit of P2P caching.

"Peer-to-peer cooperative caching can bring about several distinctive
benefits to a mobile system: improving access latency, ..." -- this
bench measures mean query latency under an explicit cost model as the
transmission range grows.  Expected shape: peer-resolved queries are an
order of magnitude cheaper than server round trips, so the mean latency
falls as more queries resolve locally (despite the extra probing).
"""

import dataclasses

from repro.core.senn import ResolutionTier
from repro.experiments.runner import format_table, run_one
from repro.sim.config import los_angeles_2x2


def run_latency_sweep(quality, seed=0):
    duration = 900.0 if quality.value == "fast" else 3600.0
    rows = []
    for tx_m in (25.0, 100.0, 200.0):
        params = dataclasses.replace(los_angeles_2x2(), tx_range_m=tx_m)
        metrics = run_one(params, seed=seed, t_execution_s=duration)
        rows.append(
            (
                tx_m,
                metrics.percentages()["server"],
                metrics.mean_latency_ms(),
                metrics.mean_latency_for(ResolutionTier.SINGLE_PEER),
                metrics.mean_latency_for(ResolutionTier.SERVER),
            )
        )
    return rows


def test_latency_improvement(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_latency_sweep, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "latency",
        format_table(
            "Mean query latency vs transmission range (LA 2x2)",
            ["tx m", "server %", "mean ms", "peer-tier ms", "server-tier ms"],
            rows,
        ),
    )
    # Server round trips dominate: a peer answer is much cheaper.
    for _, _, _, peer_ms, server_ms in rows:
        if peer_ms > 0.0 and server_ms > 0.0:
            assert peer_ms < server_ms / 3.0
    # Wider radios push queries to the cheap tier: mean latency falls.
    assert rows[-1][2] < rows[0][2]
