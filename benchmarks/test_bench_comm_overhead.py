"""The trade-off study: server offload vs P2P communication overhead.

The paper notes that peer-to-peer cooperative caching "may increase the
communication overheads among mobile hosts".  This bench quantifies both
sides of the trade as the transmission range grows: the server share
falls while the number of probes and transferred NN tuples per query
rises.
"""

import dataclasses

from repro.experiments.runner import format_table, run_one
from repro.sim.config import los_angeles_2x2


def run_tradeoff_sweep(quality, seed=0):
    duration = 900.0 if quality.value == "fast" else 3600.0
    rows = []
    for tx_m in (50.0, 100.0, 150.0, 200.0):
        params = dataclasses.replace(los_angeles_2x2(), tx_range_m=tx_m)
        metrics = run_one(params, seed=seed, t_execution_s=duration)
        rows.append(
            (
                tx_m,
                metrics.percentages()["server"],
                metrics.mean_peer_probes(),
                metrics.mean_tuples_received(),
            )
        )
    return rows


def test_comm_overhead_tradeoff(benchmark, quality, record_result):
    rows = benchmark.pedantic(
        run_tradeoff_sweep, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result(
        "comm_overhead",
        format_table(
            "Server offload vs P2P overhead (LA 2x2)",
            ["tx m", "server %", "probes/query", "tuples/query"],
            rows,
        ),
    )
    servers = [row[1] for row in rows]
    probes = [row[2] for row in rows]
    tuples = [row[3] for row in rows]
    # Offload improves with range...
    assert servers[-1] < servers[0]
    # ...and both overhead measures grow with it.
    assert probes[-1] > probes[0]
    assert tuples[-1] > tuples[0]
    # Overhead scales superlinearly with range (coverage area is
    # quadratic, clipped by the simulation boundary): from 50 m to 200 m
    # expect clearly more than a 2.5x growth in probes.
    assert probes[-1] > probes[0] * 2.5
