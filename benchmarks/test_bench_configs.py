"""Tables 3 and 4: the simulation parameter sets.

Regenerates both tables from :mod:`repro.sim.config` and checks the
values against the paper.
"""

from repro.experiments.runner import format_table
from repro.sim.config import (
    PARAMETER_SETS_2X2,
    PARAMETER_SETS_30X30,
    SimulationConfig,
)
from repro.sim.simulation import Simulation

COLUMNS = [
    "Parameter",
    "LA County",
    "Riverside",
    "Suburbia",
    "Units",
]


def _rows(sets):
    la = sets["LA"]()
    rv = sets["RV"]()
    syn = sets["SYN"]()
    return [
        ("POI Number", la.poi_number, rv.poi_number, syn.poi_number, ""),
        ("MH Number", la.mh_number, rv.mh_number, syn.mh_number, ""),
        ("C Size", la.c_size, rv.c_size, syn.c_size, ""),
        ("M Percentage", la.m_percentage, rv.m_percentage, syn.m_percentage, "%"),
        ("M Velocity", la.m_velocity, rv.m_velocity, syn.m_velocity, "mph"),
        ("Lambda Query", la.lambda_query, rv.lambda_query, syn.lambda_query, "1/min"),
        ("Tx Range", la.tx_range_m, rv.tx_range_m, syn.tx_range_m, "m"),
        ("Lambda kNN", la.lambda_knn, rv.lambda_knn, syn.lambda_knn, ""),
        ("T execution", la.t_execution_hours, rv.t_execution_hours, syn.t_execution_hours, "hr"),
        ("Area", la.area_miles, rv.area_miles, syn.area_miles, "mi side"),
    ]


def test_table3_parameter_sets(benchmark, record_result):
    def build():
        return format_table(
            "Table 3: parameter sets, 2x2 miles", COLUMNS, _rows(PARAMETER_SETS_2X2)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    record_result("table3", text)
    la = PARAMETER_SETS_2X2["LA"]()
    assert (la.poi_number, la.mh_number, la.c_size) == (16, 463, 10)
    assert la.lambda_query == 23.0


def test_table4_parameter_sets(benchmark, record_result):
    def build():
        return format_table(
            "Table 4: parameter sets, 30x30 miles", COLUMNS, _rows(PARAMETER_SETS_30X30)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    record_result("table4", text)
    la = PARAMETER_SETS_30X30["LA"]()
    assert (la.poi_number, la.mh_number, la.c_size) == (4050, 121500, 20)
    assert la.lambda_query == 8100.0


def test_simulation_boots_from_each_parameter_set(benchmark):
    """Every Table-3 set must build a runnable world (Table-4 via window)."""

    def boot_all():
        built = []
        for factory in PARAMETER_SETS_2X2.values():
            sim = Simulation(
                SimulationConfig(parameters=factory(), t_execution_s=30.0, seed=0)
            )
            built.append(len(sim.hosts))
        for factory in PARAMETER_SETS_30X30.values():
            params = factory().scaled_area(0.05)
            sim = Simulation(
                SimulationConfig(parameters=params, t_execution_s=30.0, seed=0)
            )
            built.append(len(sim.hosts))
        return built

    counts = benchmark.pedantic(boot_all, rounds=1, iterations=1)
    assert all(count > 0 for count in counts)
