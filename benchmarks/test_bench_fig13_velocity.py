"""Figure 13: resolution shares vs host velocity, 2x2-mile area.

Paper shape: velocity has a mild, gradual effect everywhere, a little
stronger where vehicle/POI density is low.
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig13_velocity(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig13, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig13", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        server = result.region_series(region, "server")
        # "The effect is quite gradual in all cases": the swing across the
        # whole 10-50 mph sweep stays bounded.
        assert max(server) - min(server) < 35.0, region
        assert all(0.0 <= value <= 100.0 for value in server)
    # Density ordering is preserved at every velocity.
    la = result.region_series("LA", "server")
    rv = result.region_series("RV", "server")
    assert sum(la) / len(la) < sum(rv) / len(rv)
