"""Figure 17: R*-tree page accesses of EINN vs INN as a function of k.

Paper shape: EINN performs consistently better than INN (10-21 % fewer
pages across k=3..15) while both grow with k at a similar rate.
"""

from repro.experiments import figures
from repro.experiments.runner import format_figure


def test_fig17_einn_vs_inn(benchmark, quality, record_result):
    result = benchmark.pedantic(
        figures.fig17, kwargs={"quality": quality}, rounds=1, iterations=1
    )
    record_result("fig17", format_figure(result))

    for region in ("LA", "SYN", "RV"):
        einn = result.region_series(region, "EINN")
        inn = result.region_series(region, "INN")
        # EINN never loses, pointwise.
        for e, i in zip(einn, inn):
            assert e <= i + 1e-9, region
        # Both grow with k.
        assert inn[-1] > inn[0], region
        assert einn[-1] > einn[0], region
        # Aggregate savings in a meaningful band (paper: 10-21 %).
        savings = 1.0 - sum(einn) / sum(inn)
        assert 0.02 <= savings <= 0.45, (region, savings)
